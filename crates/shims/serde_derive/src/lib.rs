//! Minimal `#[derive(Serialize, Deserialize)]` for the concrete structs
//! and enums in this workspace. Generics are not supported (nothing in
//! the workspace derives on a generic type). The generated impls target
//! the `serde` shim's `Value` data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether its type is an
/// `Option<…>` (detected syntactically — the derive sees tokens, not
/// resolved types). Optional fields deserialize through the
/// missing-tolerant `__get_opt`, mirroring serde's `Option` handling so
/// snapshots written before a field existed still parse.
struct Field {
    name: String,
    optional: bool,
}

/// Parsed shape of the fields of a struct or an enum variant.
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Split a token list on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments (e.g. `HashMap<String, u32>`) do not
/// split. Groups (parens/brackets/braces) are opaque single tokens.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading attributes (`#[...]`, including doc comments) and a
/// `pub` / `pub(...)` visibility prefix from a token run.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for field in split_top_commas(body) {
        let field = strip_attrs_and_vis(&field);
        let name = match field.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("unsupported field syntax".into()),
        };
        // `name : Type` — the type is optional iff its head ident is
        // `Option` (or a `std`/`core`-qualified path ending there).
        let ty_head = field
            .iter()
            .skip_while(|t| !matches!(t, TokenTree::Punct(p) if p.as_char() == ':'))
            .skip(1)
            .find_map(|t| match t {
                TokenTree::Ident(id) => {
                    let s = id.to_string();
                    (s != "std" && s != "core" && s != "option").then_some(s)
                }
                _ => None,
            });
        fields.push(Field {
            name,
            optional: ty_head.as_deref() == Some("Option"),
        });
    }
    Ok(fields)
}

fn parse_fields_group(g: &proc_macro::Group) -> Result<Fields, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match g.delimiter() {
        Delimiter::Brace => Ok(Fields::Named(parse_named_fields(&toks)?)),
        Delimiter::Parenthesis => Ok(Fields::Tuple(split_top_commas(&toks).len())),
        _ => Err("unexpected delimiter".into()),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        match toks.get(i) {
            None => return Err("no struct or enum found".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1;
            }
            _ => i += 1,
        }
    };
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("missing type name".into()),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("generic types are not supported by the serde shim derive".into());
    }
    if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) => Ok(Item::Struct {
                name,
                fields: parse_fields_group(g)?,
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            _ => Err("unsupported struct body".into()),
        }
    } else {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            _ => return Err("missing enum body".into()),
        };
        let body_toks: Vec<TokenTree> = body.stream().into_iter().collect();
        let mut variants = Vec::new();
        for var in split_top_commas(&body_toks) {
            let var = strip_attrs_and_vis(&var);
            let vname = match var.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return Err("unsupported variant syntax".into()),
            };
            let fields = match var.get(1) {
                Some(TokenTree::Group(g)) => parse_fields_group(g)?,
                None => Fields::Unit,
                // `Variant = 3` style discriminants are not used here.
                Some(_) => return Err("unsupported variant syntax".into()),
            };
            variants.push((vname, fields));
        }
        Ok(Item::Enum { name, variants })
    }
}

fn object_literal(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("({k:?}.to_string(), {v})"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let pairs: Vec<(String, String)> = fields
                        .iter()
                        .map(|f| {
                            let name = &f.name;
                            (
                                name.clone(),
                                format!("::serde::Serialize::to_value(&self.{name})"),
                            )
                        })
                        .collect();
                    object_literal(&pairs)
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => {
                        format!("{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),")
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{vname}(f0) => {},",
                        object_literal(&[(
                            vname.clone(),
                            "::serde::Serialize::to_value(f0)".into()
                        )])
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => {},",
                            binds.join(", "),
                            object_literal(&[(
                                vname.clone(),
                                format!("::serde::Value::Array(vec![{}])", vals.join(", "))
                            )])
                        )
                    }
                    Fields::Named(fields) => {
                        let fnames: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<(String, String)> = fnames
                            .iter()
                            .map(|f| (f.clone(), format!("::serde::Serialize::to_value({f})")))
                            .collect();
                        format!(
                            "{name}::{vname} {{ {} }} => {},",
                            fnames.join(", "),
                            object_literal(&[(vname.clone(), object_literal(&pairs))])
                        )
                    }
                };
                arms.push(arm);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let fname = &f.name;
                            if f.optional {
                                format!(
                                    "{fname}: ::serde::Deserialize::from_value(::serde::__get_opt(obj, {fname:?}))?"
                                )
                            } else {
                                format!(
                                    "{fname}: ::serde::Deserialize::from_value(::serde::__get(obj, {fname:?})?)?"
                                )
                            }
                        })
                        .collect();
                    format!(
                        "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                             \"expected object for {name}\"))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "let arr = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                             \"expected array for {name}\"))?;\n\
                         if arr.len() != {n} {{ return Err(::serde::Error::custom(\
                             \"wrong tuple arity for {name}\")); }}\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("let _ = v; Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push(format!("{vname:?} => return Ok({name}::{vname}),"));
                    }
                    Fields::Tuple(1) => data_arms.push(format!(
                        "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "{vname:?} => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected array for variant\"))?;\n\
                                 if arr.len() != {n} {{ return Err(::serde::Error::custom(\
                                     \"wrong variant arity\")); }}\n\
                                 Ok({name}::{vname}({}))\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let fname = &f.name;
                                if f.optional {
                                    format!(
                                        "{fname}: ::serde::Deserialize::from_value(::serde::__get_opt(vobj, {fname:?}))?"
                                    )
                                } else {
                                    format!(
                                        "{fname}: ::serde::Deserialize::from_value(::serde::__get(vobj, {fname:?})?)?"
                                    )
                                }
                            })
                            .collect();
                        data_arms.push(format!(
                            "{vname:?} => {{\n\
                                 let vobj = inner.as_object().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected object for variant\"))?;\n\
                                 Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(s) = v.as_str() {{\n\
                             match s {{ {unit} _ => return Err(::serde::Error::custom(\
                                 \"unknown unit variant for {name}\")) }}\n\
                         }}\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                             \"expected object for enum {name}\"))?;\n\
                         if obj.len() != 1 {{ return Err(::serde::Error::custom(\
                             \"expected single-key object for enum {name}\")); }}\n\
                         let (tag, inner) = &obj[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {data}\n\
                             other => Err(::serde::Error::custom(format!(\
                                 \"unknown variant {{other}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

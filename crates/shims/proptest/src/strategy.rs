//! Value-generation strategies (no shrinking).

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Uniform boolean strategy (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

/// Full-range generation for `any::<T>()`.
pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_bool()
    }
}

/// Strategy returned by [`crate::any`].
pub struct AnyOf<T>(pub PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length specification for [`fn@vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// `prop::collection::vec(element_strategy, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Regex-shaped string strategy (proptest's `&str` strategy).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let node = crate::regex::parse(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"));
        let mut out = String::new();
        crate::regex::sample(&node, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

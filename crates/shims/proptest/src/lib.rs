//! Minimal property-testing harness behind the proptest 1.x API surface
//! this workspace uses: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, range / regex-string / collection strategies,
//! `prop_map`, `any::<T>()` and `ProptestConfig::with_cases`.
//!
//! No shrinking: a failing case reports its inputs (via the assertion
//! message) and the deterministic per-test seed, which is enough to
//! reproduce — generation is a pure function of the test name, the
//! optional `PROPTEST_SEED` environment variable and the case index.

use std::fmt;

pub mod regex;
pub mod strategy;

/// Deterministic generator state handed to strategies (SplitMix64).
#[derive(Debug, Clone, Copy)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seed derived from the test name (stable across runs) xor an
    /// optional `PROPTEST_SEED` override.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(s) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            h ^= s;
        }
        Self::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_f64() * n as f64) as usize
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Failure raised by `prop_assert!` family; carried out of the test
/// body closure and reported with the case index.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// `prop` namespace mirroring proptest's module layout.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange};
    }

    pub mod bool {
        /// Uniform boolean strategy.
        pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
    }
}

/// `any::<T>()` — full-range strategy for primitive types.
pub fn any<T: strategy::ArbitraryValue>() -> strategy::AnyOf<T> {
    strategy::AnyOf(std::marker::PhantomData)
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = ($strat).generate(&mut rng); )+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10usize..20, y in -5i64..5, z in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(prop::bool::ANY, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn regex_strategy_matches_shape(s in "[a-z][a-z0-9]{0,3}(_[a-z]{1,2}){0,2}") {
            prop_assert!(!s.is_empty());
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn prop_map_applies(n in (1usize..5).prop_map(|x| x * 10)) {
            prop_assert!(n % 10 == 0 && (10..50).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_case_count_is_respected(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = "[a-z]{1,6}";
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}

//! Tiny regex *generator* (not matcher) for string strategies.
//!
//! Supports the subset proptest string strategies in this workspace
//! use: literals, character classes `[a-z0-9_]`, groups `(...)`,
//! alternation `|`, and the quantifiers `{m,n}`, `{n}`, `?`, `*`, `+`
//! (`*`/`+` are capped at 8 repetitions).

use crate::TestRng;

#[derive(Debug, Clone)]
pub enum Node {
    /// Concatenation of parts.
    Seq(Vec<Node>),
    /// One alternative chosen uniformly.
    Alt(Vec<Node>),
    /// A single literal character.
    Char(char),
    /// One character drawn uniformly from the listed choices.
    Class(Vec<char>),
    /// `inner` repeated uniformly between `min` and `max` times.
    Repeat {
        inner: Box<Node>,
        min: usize,
        max: usize,
    },
}

pub fn parse(pattern: &str) -> Result<Node, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_alt(&chars, &mut pos)?;
    if pos != chars.len() {
        return Err(format!("unexpected `{}` at offset {pos}", chars[pos]));
    }
    Ok(node)
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    let mut alts = vec![parse_seq(chars, pos)?];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        alts.push(parse_seq(chars, pos)?);
    }
    Ok(if alts.len() == 1 {
        alts.pop().unwrap()
    } else {
        Node::Alt(alts)
    })
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    let mut items = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == ')' || c == '|' {
            break;
        }
        let atom = match c {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos)?;
                if chars.get(*pos) != Some(&')') {
                    return Err("unclosed group".into());
                }
                *pos += 1;
                inner
            }
            '[' => {
                *pos += 1;
                parse_class(chars, pos)?
            }
            '\\' => {
                let esc = *chars.get(*pos + 1).ok_or("dangling escape")?;
                *pos += 2;
                match esc {
                    'd' => Node::Class(('0'..='9').collect()),
                    'w' => {
                        let mut set: Vec<char> = ('a'..='z').collect();
                        set.extend('A'..='Z');
                        set.extend('0'..='9');
                        set.push('_');
                        Node::Class(set)
                    }
                    other => Node::Char(other),
                }
            }
            '.' => {
                *pos += 1;
                Node::Class(('a'..='z').chain('A'..='Z').chain('0'..='9').collect())
            }
            other => {
                *pos += 1;
                Node::Char(other)
            }
        };
        items.push(apply_quantifier(atom, chars, pos)?);
    }
    Ok(if items.len() == 1 {
        items.pop().unwrap()
    } else {
        Node::Seq(items)
    })
}

fn apply_quantifier(atom: Node, chars: &[char], pos: &mut usize) -> Result<Node, String> {
    let (min, max) = match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let min = parse_number(chars, pos)?;
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    parse_number(chars, pos)?
                }
                _ => min,
            };
            if chars.get(*pos) != Some(&'}') {
                return Err("unclosed quantifier".into());
            }
            *pos += 1;
            (min, max)
        }
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, 8)
        }
        Some('+') => {
            *pos += 1;
            (1, 8)
        }
        _ => return Ok(atom),
    };
    if min > max {
        return Err("quantifier min > max".into());
    }
    Ok(Node::Repeat {
        inner: Box::new(atom),
        min,
        max,
    })
}

fn parse_number(chars: &[char], pos: &mut usize) -> Result<usize, String> {
    let start = *pos;
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    if start == *pos {
        return Err("expected number in quantifier".into());
    }
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .map_err(|_| "bad number".into())
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    let mut set = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        match c {
            ']' => {
                *pos += 1;
                if set.is_empty() {
                    return Err("empty character class".into());
                }
                return Ok(Node::Class(set));
            }
            '\\' => {
                let esc = *chars.get(*pos + 1).ok_or("dangling escape in class")?;
                set.push(esc);
                *pos += 2;
            }
            _ => {
                // Range `a-z` (the `-` must be followed by a non-`]`).
                if chars.get(*pos + 1) == Some(&'-')
                    && chars.get(*pos + 2).is_some_and(|&e| e != ']')
                {
                    let end = chars[*pos + 2];
                    if (c as u32) > (end as u32) {
                        return Err("inverted class range".into());
                    }
                    for code in (c as u32)..=(end as u32) {
                        set.push(char::from_u32(code).ok_or("bad class range")?);
                    }
                    *pos += 3;
                } else {
                    set.push(c);
                    *pos += 1;
                }
            }
        }
    }
    Err("unclosed character class".into())
}

pub fn sample(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for item in items {
                sample(item, rng, out);
            }
        }
        Node::Alt(alts) => sample(&alts[rng.below(alts.len())], rng, out),
        Node::Char(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.below(set.len())]),
        Node::Repeat { inner, min, max } => {
            let n = min
                + if max > min {
                    rng.below(max - min + 1)
                } else {
                    0
                };
            for _ in 0..n {
                sample(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_match_expected_shapes() {
        let mut rng = TestRng::new(7);
        let node = parse("[a-z][a-z0-9]{0,6}(_[a-z][a-z0-9]{0,6}){0,3}").unwrap();
        for _ in 0..200 {
            let mut s = String::new();
            sample(&node, &mut rng, &mut s);
            assert!(s.chars().next().unwrap().is_ascii_lowercase(), "{s}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s}"
            );
        }
    }

    #[test]
    fn alternation_and_quantifiers() {
        let mut rng = TestRng::new(3);
        let node = parse("(ab|cd)+x?").unwrap();
        for _ in 0..50 {
            let mut s = String::new();
            sample(&node, &mut rng, &mut s);
            let trimmed = s.strip_suffix('x').unwrap_or(&s);
            assert!(!trimmed.is_empty());
            let mut rest = trimmed;
            while !rest.is_empty() {
                assert!(rest.starts_with("ab") || rest.starts_with("cd"), "{s}");
                rest = &rest[2..];
            }
        }
    }
}

//! Shard-level scale-out: N independent [`ServeEngine`]s partitioned
//! by database, with work-stealing workers.
//!
//! The single engine serializes every dispatch through one state lock
//! and funnels every context lookup through one
//! [`ContextCache`](rts_core::context::ContextCache) —
//! fine at one worker, a scaling wall once an open-loop driver pushes
//! the offered rate past the saturation knee. [`ShardedEngine`] splits
//! the serving plane by database: submits route by a *revision-stable*
//! hash of the database name ([`rts_core::context::db_shard`] — FNV-1a,
//! pinned by a unit test), so each shard owns a disjoint slice of the
//! database population together with its own
//! [`FairQueue`](crate::tenant::FairQueue), context
//! cache, latency window, and counters. Lock contention and cache
//! churn stop being global.
//!
//! **Work stealing.** Database skew is the whole point of the open-loop
//! driver's Zipf workload, and static partitioning under skew strands
//! capacity: a shard whose databases are cold sits idle while a hot
//! shard's queue grows. A sharded worker therefore serves its *home*
//! shard first and, when the home queue is empty, scans the other
//! shards for ready work ([`ServeEngine::try_process_one`]), so any
//! shard's backlog is drained by whatever capacity is free. Stealing
//! never moves a ticket's *state* — the ticket stays owned by the
//! shard it was admitted to (its queue accounting, cache, gauges); only
//! the executing thread crosses shards.
//!
//! **Contracts preserved.** Outcomes are pure functions of the
//! instance and the seeded config plus the client's resolutions —
//! worker placement cannot reach them — so a sharded run is
//! byte-identical to the single-shard engine per request. The
//! `sharded_engine_matches_single_shard` proptest pins that across the
//! `RTS_THREADS × RTS_REFERENCE` CI matrix. Degrade-only shutdown
//! likewise survives composition: shutdown fans out to every shard,
//! workers drain *all* shards before exiting, and every per-shard
//! gauge returns to zero.
//!
//! Quotas, queue capacity, and cache capacity are per shard: a
//! tenant's global in-flight bound is `max_in_flight × n_shards` in
//! the worst case. That is the deliberate price of shard-local
//! admission (no cross-shard lock on the submit path).

use crate::engine::{ClientEvent, ServeConfig, ServeEngine};
use crate::error::{ResolveError, SubmitError};
use crate::stats::{LatencySummary, ServingStats};
use crate::tenant::{TenantId, TicketId};
use benchgen::schemagen::DbMeta;
use benchgen::Instance;
use rts_core::abstention::LinkScratch;
use rts_core::bpp::Mbpp;
use rts_core::context::db_shard;
use rts_core::session::FlagResolution;
use simlm::SchemaLinker;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long an idle work-stealing worker sleeps on its home shard
/// before rescanning every shard. Bounds both steal latency for work
/// arriving on a foreign shard (whose condvar the worker does not
/// wait on) and feedback-timeout latency on neighbours.
const STEAL_POLL: Duration = Duration::from_micros(500);

/// Handle to one in-flight request of a [`ShardedEngine`]: the shard
/// that owns the ticket plus the shard-local ticket id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardedTicket {
    pub shard: u32,
    pub id: TicketId,
}

impl std::fmt::Display for ShardedTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.shard, self.id)
    }
}

/// A database-sharded pool of [`ServeEngine`]s behind one submit /
/// wait / resolve surface. See the module docs for the partitioning
/// and stealing semantics.
pub struct ShardedEngine {
    shards: Vec<ServeEngine>,
    workers_per_shard: usize,
    steals: AtomicU64,
}

impl ShardedEngine {
    /// Build `n_shards` engines sharing one set of model artefacts
    /// (cloned once here into `Arc`s, then shared by every shard) and
    /// database population. `config.workers` is the *total* worker
    /// budget, split evenly (rounded up) across shards; every other
    /// knob (queue capacity, quotas, cache capacity, deadline, fault
    /// plan, rts seed) applies per shard. `n_shards == 0` is treated
    /// as 1.
    ///
    /// Every shard is built over the full `metas` slice: routing
    /// partitions *placement*, but a stolen ticket executes on a
    /// foreign thread against its home shard's state, and an engine
    /// must be able to answer any database it is asked about.
    pub fn new(
        model: &SchemaLinker,
        mbpp_tables: &Mbpp,
        mbpp_columns: &Mbpp,
        metas: &[DbMeta],
        n_shards: usize,
        config: ServeConfig,
    ) -> Self {
        Self::with_artifacts(
            Arc::new(model.clone()),
            Arc::new(mbpp_tables.clone()),
            Arc::new(mbpp_columns.clone()),
            metas.iter().map(|m| Arc::new(m.clone())).collect(),
            n_shards,
            config,
        )
    }

    /// [`ShardedEngine::new`] over already-shared artefacts: every
    /// shard holds `Arc` clones of the same trained set — one copy of
    /// the weights however many shards serve them.
    pub fn with_artifacts(
        model: Arc<SchemaLinker>,
        mbpp_tables: Arc<Mbpp>,
        mbpp_columns: Arc<Mbpp>,
        metas: Vec<Arc<DbMeta>>,
        n_shards: usize,
        config: ServeConfig,
    ) -> Self {
        let n = n_shards.max(1);
        let workers_per_shard = config.workers.div_ceil(n).max(1);
        let shards = (0..n)
            .map(|_| {
                let shard_config = ServeConfig {
                    workers: workers_per_shard,
                    ..config.clone()
                };
                ServeEngine::with_artifacts(
                    model.clone(),
                    mbpp_tables.clone(),
                    mbpp_columns.clone(),
                    metas.clone(),
                    shard_config,
                )
            })
            .collect();
        Self {
            shards,
            workers_per_shard,
            steals: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total worker threads the pool expects: spawn exactly this many
    /// threads on [`ShardedEngine::worker_loop`], passing each its
    /// index (`i % n_shards` becomes its home shard).
    pub fn workers_total(&self) -> usize {
        self.workers_per_shard * self.shards.len()
    }

    /// Workers assigned to each shard's home rotation.
    pub fn workers_per_shard(&self) -> usize {
        self.workers_per_shard
    }

    /// Admissions a worker processed from a shard other than its home
    /// shard (cumulative).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// The shard `db` routes to — [`rts_core::context::db_shard`] over
    /// this pool's shard count.
    pub fn shard_of(&self, db: &str) -> usize {
        db_shard(db, self.shards.len())
    }

    /// Direct access to one shard's engine (stats, cache introspection
    /// in tests and drivers). `None` past the shard count.
    pub fn shard(&self, idx: usize) -> Option<&ServeEngine> {
        self.shards.get(idx)
    }

    /// Admit a request, routed to its database's shard. Errors are the
    /// shard-local engine's: `QueueFull`/`QuotaExceeded` describe the
    /// owning shard, not fleet-wide occupancy.
    pub fn submit(&self, tenant: TenantId, inst: &Instance) -> Result<ShardedTicket, SubmitError> {
        let shard = self.shard_of(&inst.db_name);
        // Routing is modulo the shard count, so the lookup cannot miss
        // on a constructed pool; degrade to the typed submit error
        // rather than panicking if that invariant ever breaks.
        let Some(engine) = self.shards.get(shard) else {
            return Err(SubmitError::UnknownDatabase {
                database: inst.db_name.clone(),
            });
        };
        let id = engine.submit(tenant, inst)?;
        Ok(ShardedTicket {
            shard: shard as u32,
            id,
        })
    }

    /// Block until `ticket`'s next client-visible event on its owning
    /// shard. A ticket whose shard index does not resolve reads as
    /// [`ClientEvent::Retired`] (degrade, never panic).
    pub fn wait_event(&self, ticket: ShardedTicket) -> ClientEvent {
        match self.shards.get(ticket.shard as usize) {
            Some(engine) => engine.wait_event(ticket.id),
            None => ClientEvent::Retired,
        }
    }

    /// Edge-triggered wait on `ticket`'s owning shard — see
    /// [`ServeEngine::wait_event_changed`].
    pub fn wait_event_changed(
        &self,
        ticket: ShardedTicket,
        last_seen: Option<&rts_core::session::FlagQuery>,
    ) -> ClientEvent {
        match self.shards.get(ticket.shard as usize) {
            Some(engine) => engine.wait_event_changed(ticket.id, last_seen),
            None => ClientEvent::Retired,
        }
    }

    /// Resolve `ticket`'s pending flag on its owning shard.
    pub fn resolve(
        &self,
        ticket: ShardedTicket,
        query: &rts_core::session::FlagQuery,
        resolution: FlagResolution,
    ) -> Result<(), ResolveError> {
        match self.shards.get(ticket.shard as usize) {
            Some(engine) => engine.resolve(ticket.id, query, resolution),
            None => Err(ResolveError::Retired),
        }
    }

    /// Override a tenant's fair-share weight on every shard (a tenant's
    /// databases may hash anywhere).
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        for shard in &self.shards {
            shard.set_tenant_weight(tenant, weight);
        }
    }

    /// Signal schema drift for `db` on every shard. The owning shard
    /// holds the routed entries, but a driver may have warmed another
    /// shard's cache through direct [`ShardedEngine::shard`] access, so
    /// invalidation fans out. Returns total contexts dropped.
    pub fn invalidate_db(&self, db: &str) -> usize {
        self.shards.iter().map(|s| s.invalidate_db(db)).sum()
    }

    /// Request shutdown on every shard. Workers drain all shards —
    /// queued and parked tickets complete with the degrade-only
    /// guarantees of [`ServeEngine::shutdown`] — then exit.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.shutdown();
        }
    }

    /// The worker body: spawn [`ShardedEngine::workers_total`] scoped
    /// threads on this, passing each thread its index as `home_hint`.
    /// The worker serves `home_hint % n_shards` first and steals ready
    /// admissions from the other shards when its home queue is empty.
    /// Returns once every shard is shut down and fully drained.
    pub fn worker_loop(&self, home_hint: usize) {
        let n = self.shards.len();
        let home = home_hint % n.max(1);
        let mut scratch = LinkScratch::default();
        loop {
            let mut did_work = false;
            for k in 0..n {
                let idx = (home + k) % n;
                let Some(shard) = self.shards.get(idx) else {
                    continue;
                };
                if shard.try_process_one(&mut scratch) {
                    if k != 0 {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    did_work = true;
                    break;
                }
            }
            if did_work {
                continue;
            }
            if self.shards.iter().all(ServeEngine::is_shut_down) {
                // All shards flagged down and the scan above found
                // nothing — but a scan that *started* before the last
                // flag flipped may have skipped a drain. Sweep every
                // shard to quiescence under the observed-shutdown
                // state before exiting, so no parked ticket strands.
                let mut residual = false;
                for shard in &self.shards {
                    while shard.try_process_one(&mut scratch) {
                        residual = true;
                    }
                }
                if !residual {
                    return;
                }
                continue;
            }
            // Idle: sleep on the home shard's work signal, bounded so
            // foreign-shard arrivals (no condvar reaches us from
            // there) are picked up within STEAL_POLL.
            if let Some(shard) = self.shards.get(home) {
                shard.wait_for_work(STEAL_POLL);
            }
        }
    }

    /// One shard's counter snapshot.
    pub fn shard_stats(&self, idx: usize) -> Option<ServingStats> {
        self.shards.get(idx).map(ServeEngine::stats)
    }

    /// Fleet-wide counter snapshot: counters and gauges sum across
    /// shards, latency percentiles are recomputed over the union of
    /// every shard's sample window, depth/occupancy maxima take the
    /// per-shard max. `tenants_seen` and `tenant_in_flight_peak` are
    /// per-shard maxima (shard-local admission does not track a
    /// tenant's cross-shard occupancy).
    pub fn stats(&self) -> ServingStats {
        let mut samples: Vec<f64> = Vec::new();
        for shard in &self.shards {
            samples.extend(shard.latency_samples_ms());
        }
        let mut agg: Option<ServingStats> = None;
        for shard in &self.shards {
            let s = shard.stats();
            match agg.as_mut() {
                None => agg = Some(s),
                Some(a) => {
                    a.completed += s.completed;
                    a.shed += s.shed;
                    a.rejected += s.rejected;
                    a.rejected_quota += s.rejected_quota;
                    a.feedback_rounds += s.feedback_rounds;
                    a.timed_out_to_abstention += s.timed_out_to_abstention;
                    a.queue_depth_max = a.queue_depth_max.max(s.queue_depth_max);
                    a.queue_depth_mean = f64::max(a.queue_depth_mean, s.queue_depth_mean);
                    a.cache.absorb(s.cache);
                    a.parked_bytes_peak = a.parked_bytes_peak.max(s.parked_bytes_peak);
                    a.parked_sessions_peak += s.parked_sessions_peak;
                    a.parked_bytes_now += s.parked_bytes_now;
                    a.parked_sessions_now += s.parked_sessions_now;
                    a.checkpoints += s.checkpoints;
                    a.restores += s.restores;
                    a.checkpoint_bytes_peak = a.checkpoint_bytes_peak.max(s.checkpoint_bytes_peak);
                    a.checkpoint_bytes_now += s.checkpoint_bytes_now;
                    a.tenants_seen = a.tenants_seen.max(s.tenants_seen);
                    a.tenant_in_flight_peak = a.tenant_in_flight_peak.max(s.tenant_in_flight_peak);
                    a.panics_recovered += s.panics_recovered;
                    a.panics_to_abstention += s.panics_to_abstention;
                    a.corrupt_checkpoints_recovered += s.corrupt_checkpoints_recovered;
                    a.context_build_fallbacks += s.context_build_fallbacks;
                    a.feedback_lost += s.feedback_lost;
                    a.feedback_delayed += s.feedback_delayed;
                    a.drained_to_abstention += s.drained_to_abstention;
                    a.db_invalidations += s.db_invalidations;
                    a.invariant_breaches += s.invariant_breaches;
                }
            }
        }
        // A pool always holds ≥ 1 shard; the default only covers a
        // broken constructor invariant — degrade to an all-zero
        // snapshot rather than panicking in a stats read.
        let mut stats = agg.unwrap_or_default();
        stats.latency = LatencySummary::from_samples(&samples);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeOutcome;
    use rts_core::abstention::MitigationPolicy;
    use rts_core::bpp::{MbppConfig, ProbeConfig};
    use rts_core::branching::BranchDataset;
    use rts_core::human::{Expertise, HumanOracle};
    use rts_core::session::resolve_flag;
    use simlm::LinkTarget;

    struct Fx {
        bench: benchgen::Benchmark,
        model: SchemaLinker,
        mbpp_t: Mbpp,
        mbpp_c: Mbpp,
    }

    fn fixture() -> Fx {
        let bench = benchgen::BenchmarkProfile::bird_like()
            .scaled(0.04)
            .generate(77);
        let model = SchemaLinker::new("bird", 5);
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds_t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 300);
        let ds_c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 300);
        let mbpp_t = Mbpp::train(&ds_t, &cfg);
        let mbpp_c = Mbpp::train(&ds_c, &cfg);
        Fx {
            bench,
            model,
            mbpp_t,
            mbpp_c,
        }
    }

    /// Closed-loop client against the sharded surface: the shared
    /// [`crate::drive_closed_loop`] driver with the oracle answering
    /// every flag.
    fn client_run(
        engine: &ShardedEngine,
        tenant: TenantId,
        instances: &[benchgen::Instance],
        oracle: &HumanOracle,
    ) -> Vec<(u64, ServeOutcome)> {
        let policy = MitigationPolicy::Human(oracle);
        crate::drive_closed_loop(engine, tenant, instances, |inst, query| {
            Some(resolve_flag(&policy, inst, query))
        })
    }

    #[test]
    fn routing_is_stable_and_matches_the_core_hash() {
        let fx = fixture();
        let engine = ShardedEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            3,
            ServeConfig {
                workers: 3,
                ..Default::default()
            },
        );
        assert_eq!(engine.n_shards(), 3);
        for meta in &fx.bench.metas {
            let s = engine.shard_of(&meta.name);
            assert_eq!(s, db_shard(&meta.name, 3), "routing must be the core fn");
            assert_eq!(
                s,
                engine.shard_of(&meta.name),
                "routing must be a pure function of the name"
            );
            assert!(s < 3);
        }
        // A submitted ticket carries the shard its database routes to.
        let inst = &fx.bench.split.dev[0];
        let t = engine.submit(0, inst).expect("empty engine admits");
        assert_eq!(t.shard as usize, engine.shard_of(&inst.db_name));
        engine.shutdown();
        // Drain the one admitted ticket so gauges settle.
        crossbeam::thread::scope(|s| {
            s.spawn(|_| engine.worker_loop(0));
            let oracle = HumanOracle::new(Expertise::Expert, 5);
            let policy = MitigationPolicy::Human(&oracle);
            while let ClientEvent::NeedsFeedback { query, .. } = engine.wait_event(t) {
                let _ = engine.resolve(t, &query, resolve_flag(&policy, inst, &query));
            }
        })
        .expect("scope joins");
    }

    #[test]
    fn work_stealing_drains_a_shard_with_no_home_workers() {
        let fx = fixture();
        let n_shards = 2;
        let engine = ShardedEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            n_shards,
            ServeConfig {
                workers: 2,
                queue_capacity: 8,
                cache_capacity: 2,
                ..Default::default()
            },
        );
        // Submit only instances routing to one shard (whichever the
        // fixture's databases actually populate)…
        let starved_shard = engine.shard_of(&fx.bench.split.dev[0].db_name);
        let idle_shard = (starved_shard + 1) % n_shards;
        let starved: Vec<benchgen::Instance> = fx
            .bench
            .split
            .dev
            .iter()
            .filter(|i| engine.shard_of(&i.db_name) == starved_shard)
            .take(6)
            .cloned()
            .collect();
        assert!(!starved.is_empty());
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        // …and give every worker the *other* shard as home: the
        // starved shard has no home worker, so completions can only
        // come from stealing.
        let served = crossbeam::thread::scope(|s| {
            let workers: Vec<_> = (0..engine.workers_total())
                .map(|_| s.spawn(|_| engine.worker_loop(idle_shard)))
                .collect();
            let served = client_run(&engine, 0, &starved, &oracle);
            engine.shutdown();
            for w in workers {
                w.join().expect("worker joins");
            }
            served
        })
        .expect("scope joins");
        assert_eq!(served.len(), starved.len(), "every request completes");
        assert!(
            engine.steals() >= starved.len() as u64,
            "a home-less shard is served exclusively by steals: {} steals",
            engine.steals()
        );
        let starved_stats = engine.shard_stats(starved_shard).expect("shard exists");
        assert_eq!(starved_stats.completed, starved.len() as u64);
        let idle_stats = engine.shard_stats(idle_shard).expect("shard exists");
        assert_eq!(idle_stats.completed, 0, "no work ever routed there");
    }

    #[test]
    fn per_shard_gauges_drain_to_zero_after_shutdown() {
        let fx = fixture();
        let engine = ShardedEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            2,
            ServeConfig {
                workers: 2,
                queue_capacity: 8,
                cache_capacity: 2,
                // A 1-byte budget forces every parked session through
                // the checkpoint path, exercising both gauges.
                parked_bytes_budget: 1,
                ..Default::default()
            },
        );
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(12).cloned().collect();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let served = crossbeam::thread::scope(|s| {
            let eng = &engine;
            let workers: Vec<_> = (0..engine.workers_total())
                .map(|i| s.spawn(move |_| eng.worker_loop(i)))
                .collect();
            let served = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            for w in workers {
                w.join().expect("worker joins");
            }
            served
        })
        .expect("scope joins");
        assert_eq!(served.len(), instances.len());
        let agg = engine.stats();
        assert!(agg.feedback_rounds > 0, "fixture must exercise feedback");
        for idx in 0..engine.n_shards() {
            let s = engine.shard_stats(idx).expect("shard exists");
            assert_eq!(s.parked_bytes_now, 0, "shard {idx} parked bytes");
            assert_eq!(s.parked_sessions_now, 0, "shard {idx} parked sessions");
            assert_eq!(s.checkpoint_bytes_now, 0, "shard {idx} checkpoint bytes");
            assert_eq!(s.invariant_breaches, 0, "shard {idx} breaches");
        }
        assert_eq!(
            agg.completed,
            instances.len() as u64,
            "aggregate counts every shard's completions"
        );
        assert_eq!(agg.parked_bytes_now + agg.checkpoint_bytes_now, 0);
    }
}

//! Deterministic fault injection for the serving engine.
//!
//! A [`FaultPlan`] is a *seeded, reproducible schedule* of faults: each
//! injection site keeps its own draw counter, and whether draw `n` at
//! site `s` trips is a pure function of `(seed, s, n)` — re-running the
//! same single-threaded workload with the same seed injects the same
//! faults at the same points. (Under a multi-threaded pool the per-site
//! *sequence* is still fixed; only which worker consumes which draw
//! varies, exactly like the work schedule itself.)
//!
//! Five sites cover the failure modes the engine hardens against:
//!
//! * [`FaultSite::StepPanic`] — a worker panics mid-step. The engine
//!   catches it, rebuilds the session from its salvage checkpoint, and
//!   retries with backoff; past the retry budget the ticket degrades to
//!   abstention (`faulted` in the outcome), never a dead pool.
//! * [`FaultSite::CheckpointDecode`] — a parked-session checkpoint
//!   fails to decode. The engine re-runs the regeneration recipe from
//!   its in-memory salvage copy, or abstains.
//! * [`FaultSite::ContextBuild`] — building a shared `LinkContext`
//!   fails. The session runs context-free instead; the reference
//!   implicated-set path is outcome-identical (pinned by the parity
//!   proptests), so this degrades *performance*, never answers.
//! * [`FaultSite::FeedbackLoss`] — a client's resolution is lost in
//!   flight. Only injected when a feedback timeout is configured: the
//!   park timeout completes the request as an abstention hand-off.
//! * [`FaultSite::FeedbackDelay`] — a resolution is delayed before it
//!   reaches the engine, exercising the stale-answer races.
//!
//! A disabled plan (the default) is a single predictable branch per
//! site — no RNG, no atomics touched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where a fault can be injected. See the module docs for what the
/// engine does when each one fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside a worker's session step.
    StepPanic,
    /// Corrupt a parked-session checkpoint at decode time.
    CheckpointDecode,
    /// Fail a shared `LinkContext` build.
    ContextBuild,
    /// Drop a client resolution in flight (requires a feedback timeout).
    FeedbackLoss,
    /// Delay a client resolution before it reaches the engine.
    FeedbackDelay,
}

const N_SITES: usize = 5;

/// Distinct salts decorrelate the per-site draw streams.
const SITE_SALTS: [u64; N_SITES] = [
    0x53_54_45_50, // "STEP"
    0x43_4B_50_54, // "CKPT"
    0x43_54_58_42, // "CTXB"
    0x46_4C_4F_53, // "FLOS"
    0x46_44_4C_59, // "FDLY"
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::StepPanic => 0,
            FaultSite::CheckpointDecode => 1,
            FaultSite::ContextBuild => 2,
            FaultSite::FeedbackLoss => 3,
            FaultSite::FeedbackDelay => 4,
        }
    }
}

/// The payload of an *injected* step panic — a marker type so panic
/// hooks (see [`silence_injected_panics`]) and tests can tell a
/// scheduled fault from a genuine bug unwinding.
#[derive(Debug)]
pub struct InjectedPanic;

/// A seeded, reproducible fault schedule. Disabled by default
/// ([`FaultPlan::disabled`]); [`FaultPlan::seeded`] arms every site at
/// one rate, and [`FaultPlan::with_rate`] tunes sites individually.
#[derive(Debug)]
pub struct FaultPlan {
    enabled: bool,
    /// Schedule seed: same seed + same workload ⇒ same fault schedule.
    pub seed: u64,
    /// Per-site trip probabilities, indexed by [`FaultSite`].
    rates: [f64; N_SITES],
    /// How long a delayed resolution sleeps before reaching the engine.
    pub feedback_delay: Duration,
    /// Per-site draw counters — the schedule position, not statistics.
    draws: [AtomicU64; N_SITES],
}

impl FaultPlan {
    /// The no-op plan: every [`FaultPlan::trip`] is one predictable
    /// `false` branch.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            seed: 0,
            rates: [0.0; N_SITES],
            feedback_delay: Duration::from_micros(500),
            draws: Default::default(),
        }
    }

    /// Arm every site at probability `rate` under `seed`.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        Self {
            enabled: true,
            seed,
            rates: [rate; N_SITES],
            feedback_delay: Duration::from_micros(500),
            draws: Default::default(),
        }
    }

    /// Override one site's rate (builder-style; arms the plan).
    pub fn with_rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.enabled = true;
        self.rates[site.index()] = rate;
        self
    }

    /// Is any site armed?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// This site's trip probability.
    pub fn rate_of(&self, site: FaultSite) -> f64 {
        self.rates[site.index()]
    }

    /// Draw the next scheduled decision for `site`: does this fault
    /// fire? Deterministic in `(seed, site, draw index)`.
    #[inline]
    pub fn trip(&self, site: FaultSite) -> bool {
        if !self.enabled {
            return false;
        }
        let i = site.index();
        let rate = self.rates[i];
        if rate <= 0.0 {
            return false;
        }
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        let x = splitmix64(self.seed ^ SITE_SALTS[i] ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // 53-bit uniform in [0, 1).
        ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Clone for FaultPlan {
    /// Clones the *schedule* (seed + rates), not the position: a cloned
    /// plan starts its draw streams from zero, so an engine built from
    /// a cloned config replays the same faults.
    fn clone(&self) -> Self {
        Self {
            enabled: self.enabled,
            seed: self.seed,
            rates: self.rates,
            feedback_delay: self.feedback_delay,
            draws: Default::default(),
        }
    }
}

/// SplitMix64 finalizer — one multiply-xorshift cascade per draw.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Install a process-wide panic hook that swallows [`InjectedPanic`]
/// payloads (scheduled faults are expected — printing a backtrace per
/// injection would drown the logs) and forwards everything else to the
/// previous hook. Idempotent.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequence(plan: &FaultPlan, site: FaultSite, n: usize) -> Vec<bool> {
        (0..n).map(|_| plan.trip(site)).collect()
    }

    #[test]
    fn disabled_plan_never_trips() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        assert!(sequence(&plan, FaultSite::StepPanic, 256)
            .iter()
            .all(|t| !t));
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::seeded(42, 0.3);
        let b = FaultPlan::seeded(42, 0.3);
        for site in [
            FaultSite::StepPanic,
            FaultSite::CheckpointDecode,
            FaultSite::ContextBuild,
            FaultSite::FeedbackLoss,
            FaultSite::FeedbackDelay,
        ] {
            assert_eq!(sequence(&a, site, 512), sequence(&b, site, 512));
        }
    }

    #[test]
    fn different_seeds_diverge_and_rates_bound_frequency() {
        let a = FaultPlan::seeded(1, 0.3);
        let b = FaultPlan::seeded(2, 0.3);
        assert_ne!(
            sequence(&a, FaultSite::StepPanic, 512),
            sequence(&b, FaultSite::StepPanic, 512)
        );
        let always = FaultPlan::seeded(7, 1.0);
        assert!(sequence(&always, FaultSite::StepPanic, 64)
            .iter()
            .all(|&t| t));
        let frequent = FaultPlan::seeded(7, 0.25);
        let trips = sequence(&frequent, FaultSite::StepPanic, 4096)
            .iter()
            .filter(|&&t| t)
            .count();
        // 4096 Bernoulli(0.25) draws: mean 1024, σ ≈ 28.
        assert!((800..1250).contains(&trips), "trips {trips}");
    }

    #[test]
    fn clone_replays_the_schedule_from_zero() {
        let a = FaultPlan::seeded(9, 0.4).with_rate(FaultSite::FeedbackLoss, 0.0);
        let first = sequence(&a, FaultSite::StepPanic, 100);
        let b = a.clone();
        assert_eq!(sequence(&b, FaultSite::StepPanic, 100), first);
        assert!(!b.trip(FaultSite::FeedbackLoss));
    }
}

//! One engine API: the [`Engine`] trait every serving surface —
//! [`ServeEngine`], [`ShardedEngine`], and the `rts-client` TCP client
//! — implements, plus the shared closed-loop client the drivers and
//! parity tests run against it.
//!
//! Before this trait, every driver and test carried a
//! `ServeEngine`-vs-`ShardedEngine` copy of the same submit/wait/
//! resolve loop (and a third copy would have arrived with the wire
//! client). The trait abstracts exactly the client-visible surface:
//! submission, event waiting, feedback resolution, stats, schema
//! invalidation, and shutdown. Engines stay free to expose richer
//! inherent APIs (worker loops, shard introspection); generic callers
//! see only this.

use crate::engine::{ClientEvent, ServeEngine, ServeOutcome};
use crate::error::{ResolveError, SubmitError};
use crate::shard::{ShardedEngine, ShardedTicket};
use crate::stats::ServingStats;
use crate::tenant::{TenantId, TicketId};
use benchgen::Instance;
use rts_core::session::{FlagQuery, FlagResolution};
use std::time::Duration;

/// The client-visible serving surface. `Sync` because every
/// implementation is driven by concurrent client threads; the ticket
/// is an opaque, copyable handle (a `u64` for the single engine, a
/// `(shard, id)` pair for the sharded one, a request id for the wire
/// client).
pub trait Engine: Sync {
    /// Handle to one in-flight request.
    type Ticket: Copy + Eq + std::fmt::Debug + std::fmt::Display + Send + Sync;

    /// Admit a request for joint (tables → columns) linking of `inst`.
    fn submit(&self, tenant: TenantId, inst: &Instance) -> Result<Self::Ticket, SubmitError>;

    /// Block until the ticket suspends on feedback or completes. The
    /// protocol is `submit → (wait_event → resolve)* → Done`;
    /// re-polling a suspended ticket returns the same query, and a
    /// collected or unknown ticket reads [`ClientEvent::Retired`].
    fn wait_event(&self, ticket: Self::Ticket) -> ClientEvent;

    /// Edge-triggered [`Engine::wait_event`]: block until the ticket's
    /// state differs from `last_seen` (the query the caller already
    /// holds). What a connection handler pushing events to a remote
    /// client waits on.
    fn wait_event_changed(
        &self,
        ticket: Self::Ticket,
        last_seen: Option<&FlagQuery>,
    ) -> ClientEvent;

    /// Apply feedback to a suspended ticket. `query` is the flag being
    /// answered — its identity guards against a stale answer landing
    /// on a different flag.
    fn resolve(
        &self,
        ticket: Self::Ticket,
        query: &FlagQuery,
        resolution: FlagResolution,
    ) -> Result<(), ResolveError>;

    /// Counter snapshot.
    fn stats(&self) -> ServingStats;

    /// Signal schema drift for `db`: drop its cached contexts so new
    /// sessions rebuild. Returns the number of contexts dropped.
    fn invalidate_db(&self, db: &str) -> usize;

    /// Override a tenant's fair-share weight (default 1).
    fn set_tenant_weight(&self, tenant: TenantId, weight: u32);

    /// Ask the engine to drain and stop: queued and parked work
    /// completes (parked flags degrade to abstention), then workers
    /// exit.
    fn shutdown(&self);
}

impl Engine for ServeEngine {
    type Ticket = TicketId;

    fn submit(&self, tenant: TenantId, inst: &Instance) -> Result<TicketId, SubmitError> {
        ServeEngine::submit(self, tenant, inst)
    }

    fn wait_event(&self, ticket: TicketId) -> ClientEvent {
        ServeEngine::wait_event(self, ticket)
    }

    fn wait_event_changed(&self, ticket: TicketId, last_seen: Option<&FlagQuery>) -> ClientEvent {
        ServeEngine::wait_event_changed(self, ticket, last_seen)
    }

    fn resolve(
        &self,
        ticket: TicketId,
        query: &FlagQuery,
        resolution: FlagResolution,
    ) -> Result<(), ResolveError> {
        ServeEngine::resolve(self, ticket, query, resolution)
    }

    fn stats(&self) -> ServingStats {
        ServeEngine::stats(self)
    }

    fn invalidate_db(&self, db: &str) -> usize {
        ServeEngine::invalidate_db(self, db)
    }

    fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        ServeEngine::set_tenant_weight(self, tenant, weight)
    }

    fn shutdown(&self) {
        ServeEngine::shutdown(self)
    }
}

impl Engine for ShardedEngine {
    type Ticket = ShardedTicket;

    fn submit(&self, tenant: TenantId, inst: &Instance) -> Result<ShardedTicket, SubmitError> {
        ShardedEngine::submit(self, tenant, inst)
    }

    fn wait_event(&self, ticket: ShardedTicket) -> ClientEvent {
        ShardedEngine::wait_event(self, ticket)
    }

    fn wait_event_changed(
        &self,
        ticket: ShardedTicket,
        last_seen: Option<&FlagQuery>,
    ) -> ClientEvent {
        ShardedEngine::wait_event_changed(self, ticket, last_seen)
    }

    fn resolve(
        &self,
        ticket: ShardedTicket,
        query: &FlagQuery,
        resolution: FlagResolution,
    ) -> Result<(), ResolveError> {
        ShardedEngine::resolve(self, ticket, query, resolution)
    }

    fn stats(&self) -> ServingStats {
        ShardedEngine::stats(self)
    }

    fn invalidate_db(&self, db: &str) -> usize {
        ShardedEngine::invalidate_db(self, db)
    }

    fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        ShardedEngine::set_tenant_weight(self, tenant, weight)
    }

    fn shutdown(&self) {
        ShardedEngine::shutdown(self)
    }
}

/// How long a closed-loop client backs off after a `QueueFull`/
/// `QuotaExceeded` rejection before retrying the submit.
const SUBMIT_RETRY: Duration = Duration::from_micros(200);

/// How long a stalling client sleeps before re-polling a flag its
/// feedback provider declined to answer yet.
const STALL_POLL: Duration = Duration::from_micros(500);

/// The closed-loop client every driver and parity test runs: submit
/// each instance in order (retrying through backpressure rejections),
/// answer feedback through `resolve_feedback`, and collect outcomes in
/// submission order.
///
/// `resolve_feedback(inst, query)` returns the resolution to apply, or
/// `None` to *stall* — the client sleeps briefly and re-polls, leaving
/// the flag unanswered (how the workload driver models a human who has
/// not answered yet, letting feedback timeouts fire). Resolve races
/// ([`ResolveError::Stale`] after a timeout beat the answer) are
/// legal protocol outcomes and ignored; hard submit errors (unknown
/// database/instance, transport loss) panic — closed-loop fixtures
/// always submit known instances against a live engine, so those are
/// harness bugs, not load conditions.
pub fn drive_closed_loop<E: Engine + ?Sized>(
    engine: &E,
    tenant: TenantId,
    instances: &[Instance],
    mut resolve_feedback: impl FnMut(&Instance, &FlagQuery) -> Option<FlagResolution>,
) -> Vec<(u64, ServeOutcome)> {
    let mut out = Vec::with_capacity(instances.len());
    for inst in instances {
        let ticket = loop {
            match engine.submit(tenant, inst) {
                Ok(t) => break t,
                Err(SubmitError::QueueFull { .. } | SubmitError::QuotaExceeded { .. }) => {
                    std::thread::sleep(SUBMIT_RETRY);
                }
                // rts-allow(panic): harness-only helper — a closed-loop
                // fixture submitting an unknown instance is a test bug,
                // not a load condition; fail loudly at the harness.
                Err(e) => panic!("closed-loop submit must admit instance {}: {e}", inst.id),
            }
        };
        loop {
            match engine.wait_event(ticket) {
                ClientEvent::NeedsFeedback { query, .. } => match resolve_feedback(inst, &query) {
                    Some(resolution) => {
                        // Stale is a legal race (a feedback timeout or
                        // shutdown drain beat the answer); the engine
                        // dropped the answer, never misapplied it.
                        let _ = engine.resolve(ticket, &query, resolution);
                    }
                    None => std::thread::sleep(STALL_POLL),
                },
                ClientEvent::Done(outcome) => {
                    out.push((inst.id, outcome));
                    break;
                }
                ClientEvent::Retired => {
                    // rts-allow(panic): harness-only helper — nothing
                    // else collects this client's tickets, so Retired
                    // here means the engine broke its protocol; the
                    // parity tests want that loud.
                    panic!("ticket {ticket} retired while its client still waits")
                }
            }
        }
    }
    out
}

//! Multi-tenant admission: per-tenant sub-queues with deficit-round-
//! robin dispatch, plus the per-tenant quota/occupancy accounting the
//! engine's admission control reads.
//!
//! The PR-4 engine had one global FIFO: a tenant submitting 10k
//! requests put every other tenant 10k places back in line. The
//! [`FairQueue`] replaces it with one sub-queue pair per tenant
//! (fresh admissions + resumed sessions) and serves tenants
//! round-robin, weighted by a deficit counter — a tenant with weight
//! `w` is handed `w` requests per scheduling cycle, so a chatty
//! tenant's backlog deepens *its own* queue without starving anyone
//! else's. Resumed sessions keep their global priority over fresh
//! admissions (feedback-ready work never waits behind arrivals), but
//! that priority is itself rotated fairly across tenants.
//!
//! Occupancy ([`FairQueue::load`]) tracks, per tenant, how many
//! requests are anywhere between admission and completion and how many
//! of those are parked awaiting feedback. The engine's quota check
//! rejects submissions past either bound ([`crate::SubmitError::QuotaExceeded`])
//! — backpressure lands on the tenant causing it.

use std::collections::{HashMap, VecDeque};

/// Opaque tenant identifier. Tenants are whoever the operator wants to
/// isolate from each other — API keys, organizations, databases; the
/// engine only requires that submissions are tagged consistently.
pub type TenantId = u32;

/// Handle to one in-flight request.
pub type TicketId = u64;

/// Per-tenant admission quota. `0` = unbounded (single-tenant
/// deployments keep the PR-4 behaviour by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantQuota {
    /// Max requests a tenant may have anywhere between admission and
    /// completion (queued + running + parked).
    pub max_in_flight: usize,
    /// Parked-occupancy bound *checked at admission*: a tenant with
    /// this many sessions already parked awaiting feedback cannot
    /// submit more until it answers (or times out) some of them, so a
    /// tenant that never answers stops accumulating suspended sessions
    /// instead of filling the engine. Note the enforcement point: a
    /// burst admitted while nothing was parked may still *become* more
    /// than `max_parked` parked sessions — use `max_in_flight` to
    /// bound a tenant's instantaneous occupancy outright.
    pub max_parked: usize,
}

/// A tenant's current occupancy, read by the quota check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLoad {
    pub in_flight: usize,
    pub parked: usize,
}

#[derive(Debug)]
struct TenantState {
    admission: VecDeque<TicketId>,
    resume: VecDeque<TicketId>,
    /// Requests this tenant may still pop in the current DRR cycle.
    deficit: u64,
    /// DRR quantum: requests handed per cycle (≥ 1).
    weight: u32,
    in_flight: usize,
    parked: usize,
    in_flight_peak: usize,
}

impl TenantState {
    fn new(weight: u32) -> Self {
        Self {
            admission: VecDeque::new(),
            resume: VecDeque::new(),
            deficit: 0,
            weight,
            in_flight: 0,
            parked: 0,
            in_flight_peak: 0,
        }
    }

    fn has_queued(&self) -> bool {
        !self.admission.is_empty() || !self.resume.is_empty()
    }
}

/// Weighted-fair work queue over per-tenant sub-queues.
#[derive(Debug)]
pub struct FairQueue {
    tenants: HashMap<TenantId, TenantState>,
    /// Tenants with queued work, in scheduling order. Invariant: a
    /// tenant is in the ring iff `has_queued()`.
    ring: VecDeque<TenantId>,
    /// Weight assigned to tenants on first contact (overridable per
    /// tenant through [`FairQueue::set_weight`]).
    default_weight: u32,
    n_admission: usize,
    n_resume: usize,
}

impl FairQueue {
    pub fn new(default_weight: u32) -> Self {
        Self {
            tenants: HashMap::new(),
            ring: VecDeque::new(),
            default_weight: default_weight.max(1),
            n_admission: 0,
            n_resume: 0,
        }
    }

    fn tenant_mut(&mut self, t: TenantId) -> &mut TenantState {
        let w = self.default_weight;
        self.tenants.entry(t).or_insert_with(|| TenantState::new(w))
    }

    /// Override a tenant's DRR weight (takes effect next recharge).
    pub fn set_weight(&mut self, t: TenantId, weight: u32) {
        self.tenant_mut(t).weight = weight.max(1);
    }

    /// Queued fresh admissions across all tenants (what the global
    /// queue-capacity bound limits).
    pub fn n_admission(&self) -> usize {
        self.n_admission
    }

    /// Total queued work across all tenants (depth statistics).
    pub fn queued_len(&self) -> usize {
        self.n_admission + self.n_resume
    }

    /// A tenant's occupancy (zero for tenants never seen).
    pub fn load(&self, t: TenantId) -> TenantLoad {
        self.tenants.get(&t).map_or(
            TenantLoad {
                in_flight: 0,
                parked: 0,
            },
            |s| TenantLoad {
                in_flight: s.in_flight,
                parked: s.parked,
            },
        )
    }

    /// Distinct tenants that ever had a request admitted (a tenant
    /// that was only weight-configured does not count).
    pub fn n_tenants(&self) -> usize {
        self.tenants
            .values()
            .filter(|s| s.in_flight_peak > 0)
            .count()
    }

    /// The highest concurrent in-flight count any tenant ever reached —
    /// the number a fairness self-check compares against the quota.
    pub fn max_in_flight_peak(&self) -> usize {
        self.tenants
            .values()
            .map(|s| s.in_flight_peak)
            .max()
            .unwrap_or(0)
    }

    fn enlist(&mut self, t: TenantId, was_queued: bool) {
        if !was_queued {
            self.ring.push_back(t);
        }
    }

    /// Enqueue a fresh admission for `t`. Occupancy must be billed
    /// separately ([`FairQueue::note_admitted`]).
    pub fn push_admission(&mut self, t: TenantId, id: TicketId) {
        let s = self.tenant_mut(t);
        let was_queued = s.has_queued();
        s.admission.push_back(id);
        self.n_admission += 1;
        self.enlist(t, was_queued);
    }

    /// Enqueue a resumed (feedback-resolved or timed-out) session.
    pub fn push_resume(&mut self, t: TenantId, id: TicketId) {
        let s = self.tenant_mut(t);
        let was_queued = s.has_queued();
        s.resume.push_back(id);
        self.n_resume += 1;
        self.enlist(t, was_queued);
    }

    /// Bill one admitted request against `t`'s occupancy.
    pub fn note_admitted(&mut self, t: TenantId) {
        let s = self.tenant_mut(t);
        s.in_flight += 1;
        s.in_flight_peak = s.in_flight_peak.max(s.in_flight);
    }

    /// One of `t`'s requests completed.
    pub fn note_done(&mut self, t: TenantId) {
        let s = self.tenant_mut(t);
        debug_assert!(s.in_flight > 0, "done without admission");
        s.in_flight = s.in_flight.saturating_sub(1);
    }

    /// One of `t`'s requests parked awaiting feedback.
    pub fn note_parked(&mut self, t: TenantId) {
        self.tenant_mut(t).parked += 1;
    }

    /// One of `t`'s parked requests was resolved (or timed out).
    pub fn note_unparked(&mut self, t: TenantId) {
        let s = self.tenant_mut(t);
        debug_assert!(s.parked > 0, "unpark without park");
        s.parked = s.parked.saturating_sub(1);
    }

    /// Drop the head-of-ring tenant if it ran out of queued work, or
    /// rotate it to the back when `cede` says its turn is over.
    fn retire_or_rotate(&mut self, t: TenantId, cede: bool) {
        match self.tenants.get_mut(&t) {
            Some(s) if !s.has_queued() => {
                s.deficit = 0;
                self.ring.pop_front();
            }
            Some(_) if cede => {
                self.ring.rotate_left(1);
            }
            Some(_) => {}
            // A ring entry without a tenant record is an accounting
            // bug; retire the orphan entry and keep serving rather
            // than panicking mid-dispatch.
            None => {
                self.ring.pop_front();
            }
        }
    }

    /// Dispatch the next ticket. Resumed sessions first (rotating
    /// fairly across tenants), then fresh admissions by deficit round
    /// robin: the head tenant is recharged `weight` credits when flat,
    /// spends one per pop, and cedes the head when spent — so over any
    /// window, service is proportional to weight, and a tenant with an
    /// arbitrarily deep backlog still hands the queue over.
    pub fn pop(&mut self) -> Option<TicketId> {
        // Pass 1: resumed sessions, round robin. Guarded by the exact
        // resume count so the steady state without parked feedback —
        // the common case — skips the ring rotation entirely.
        if self.n_resume > 0 {
            for _ in 0..self.ring.len() {
                let Some(&t) = self.ring.front() else { break };
                if let Some(s) = self.tenants.get_mut(&t) {
                    if let Some(id) = s.resume.pop_front() {
                        self.n_resume -= 1;
                        self.retire_or_rotate(t, true);
                        return Some(id);
                    }
                }
                self.ring.rotate_left(1);
            }
        }
        // Pass 2: fresh admissions, deficit round robin. After pass 1
        // every ring member has an empty resume queue, so an empty
        // admission queue means no work at all → leave the ring.
        while let Some(&t) = self.ring.front() {
            let Some(s) = self.tenants.get_mut(&t) else {
                // Orphan ring entry (accounting bug): retire it and
                // keep serving the rest of the ring.
                self.ring.pop_front();
                continue;
            };
            let Some(id) = s.admission.pop_front() else {
                s.deficit = 0;
                self.ring.pop_front();
                continue;
            };
            if s.deficit == 0 {
                s.deficit = u64::from(s.weight.max(1));
            }
            s.deficit -= 1;
            self.n_admission -= 1;
            let spent = s.deficit == 0;
            if spent || !s.has_queued() {
                s.deficit = 0;
            }
            self.retire_or_rotate(t, spent);
            return Some(id);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FairQueue) -> Vec<TicketId> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = FairQueue::new(1);
        for id in 0..5 {
            q.push_admission(7, id);
        }
        assert_eq!(drain(&mut q), vec![0, 1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn chatty_tenant_cannot_starve_others() {
        let mut q = FairQueue::new(1);
        // Tenant 0 floods 100 requests (ids 0..100), then tenants 1 and
        // 2 submit one each.
        for id in 0..100 {
            q.push_admission(0, id);
        }
        q.push_admission(1, 1000);
        q.push_admission(2, 2000);
        let order = drain(&mut q);
        let pos = |id: TicketId| order.iter().position(|&x| x == id).unwrap();
        // Late single submissions are served within one DRR cycle, not
        // behind the flood.
        assert!(pos(1000) <= 3, "tenant 1 starved: position {}", pos(1000));
        assert!(pos(2000) <= 3, "tenant 2 starved: position {}", pos(2000));
        assert_eq!(order.len(), 102);
    }

    #[test]
    fn equal_weights_interleave_round_robin() {
        let mut q = FairQueue::new(1);
        for id in 0..4 {
            q.push_admission(0, id);
            q.push_admission(1, 100 + id);
        }
        let order = drain(&mut q);
        // Strict alternation under unit weights.
        for pair in order.chunks(2) {
            assert_eq!(
                pair.iter().filter(|&&id| id >= 100).count(),
                1,
                "order not interleaved: {order:?}"
            );
        }
    }

    #[test]
    fn weights_skew_service_proportionally() {
        let mut q = FairQueue::new(1);
        q.set_weight(0, 3);
        for id in 0..9 {
            q.push_admission(0, id);
        }
        for id in 0..3 {
            q.push_admission(1, 100 + id);
        }
        let order = drain(&mut q);
        // First DRR cycle: three of tenant 0, one of tenant 1.
        assert_eq!(&order[..4], &[0, 1, 2, 100]);
        assert_eq!(&order[4..8], &[3, 4, 5, 101]);
    }

    #[test]
    fn resumed_sessions_preempt_fresh_admissions_fairly() {
        let mut q = FairQueue::new(1);
        for id in 0..3 {
            q.push_admission(0, id);
        }
        q.push_resume(1, 500);
        q.push_resume(2, 600);
        let order = drain(&mut q);
        // Both resumes come out before any admission.
        assert_eq!(
            &order[..2]
                .iter()
                .copied()
                .collect::<std::collections::HashSet<_>>(),
            &[500, 600].into_iter().collect()
        );
        assert_eq!(&order[2..], &[0, 1, 2]);
    }

    #[test]
    fn occupancy_tracks_in_flight_and_parked_peaks() {
        let mut q = FairQueue::new(1);
        q.note_admitted(4);
        q.note_admitted(4);
        q.note_parked(4);
        assert_eq!(
            q.load(4),
            TenantLoad {
                in_flight: 2,
                parked: 1
            }
        );
        q.note_unparked(4);
        q.note_done(4);
        assert_eq!(
            q.load(4),
            TenantLoad {
                in_flight: 1,
                parked: 0
            }
        );
        assert_eq!(q.max_in_flight_peak(), 2, "peak survives the drain");
        assert_eq!(q.n_tenants(), 1);
        assert_eq!(q.load(99).in_flight, 0, "unknown tenants read as idle");
        q.set_weight(50, 3);
        assert_eq!(
            q.n_tenants(),
            1,
            "weight-only tenants never submitted and must not count"
        );
    }

    #[test]
    fn queue_counters_track_both_lanes() {
        let mut q = FairQueue::new(1);
        q.push_admission(0, 1);
        q.push_resume(0, 2);
        q.push_admission(1, 3);
        assert_eq!(q.n_admission(), 2);
        assert_eq!(q.queued_len(), 3);
        let _ = q.pop();
        assert_eq!(q.queued_len(), 2);
        drain(&mut q);
        assert_eq!((q.n_admission(), q.queued_len()), (0, 0));
    }
}

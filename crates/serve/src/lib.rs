//! # rts-serve — the online serving engine
//!
//! The batch drivers in `rts-core` answer "how well does adaptive
//! abstention work?"; this crate answers "how do you *serve* it".
//! Production traffic is nothing like a closed batch job: requests
//! arrive concurrently, suspend mid-flight awaiting human feedback,
//! and must come back with *some* answer under a latency budget.
//! [`ServeEngine`] is that runtime, built directly on the resumable
//! [`rts_core::session::LinkSession`] state machine:
//!
//! * **Bounded admission** — [`ServeEngine::submit`] enqueues into a
//!   fixed-capacity queue and rejects beyond it, so overload surfaces
//!   as backpressure at the edge instead of unbounded memory.
//! * **Multi-tenant fairness** — every submission is tagged with a
//!   [`TenantId`]; admissions land in per-tenant sub-queues served by
//!   deficit-round-robin dispatch ([`tenant::FairQueue`]), so one
//!   chatty tenant deepens only its own backlog. Per-tenant quotas
//!   (max in-flight / max parked) bounce the offender with
//!   [`SubmitError::QuotaExceeded`] while everyone else keeps
//!   submitting.
//! * **Feedback timeouts** — a session parked on a human who never
//!   answers is resumed after [`ServeConfig::feedback_timeout`] with
//!   the abstention verdict: the request *completes* as a hand-off
//!   (`timed_out_to_abstention` in the stats), it is never dropped.
//!   Load shedding, quota backpressure and feedback timeouts all
//!   degrade through the same abstention mechanism.
//! * **Parked-session checkpointing** — past
//!   [`ServeConfig::parked_bytes_budget`], the largest parked sessions
//!   are serialized through the serde shim (a few hundred bytes of
//!   recipe instead of tens of KB of hidden-state stacks) and restored
//!   bit-identically when their feedback arrives — generation is
//!   deterministic, so the evicted round re-synthesizes exactly
//!   (pinned by the checkpoint-roundtrip parity proptests).
//! * **Non-blocking feedback** — when a session hits a branching flag
//!   it is *parked* (worker moves on); the client answers through
//!   [`ServeEngine::resolve`] and the session re-enters the work queue.
//!   No worker is ever held hostage by a waiting human.
//! * **Joint session chaining** — each request runs table linking then
//!   column linking, mirroring `run_joint_linking_in`'s joint process,
//!   with outcomes combined into a [`rts_core::pipeline::JointOutcome`].
//! * **Lazy per-tenant contexts** — `LinkContext`s are built on first
//!   request per `(database, target)` and shared through an LRU
//!   [`rts_core::context::ContextCache`]; cold-start cost is paid per
//!   tenant, not per boot.
//! * **Abstention as backpressure** — a request past its deadline is
//!   not dropped: the remaining linking stages degrade to *abstention*,
//!   the paper's own "hand this instance off" verdict. Load shedding
//!   and reliability share one mechanism, unique to this design.
//! * **Degrade-only fault tolerance** — a panicking session step is
//!   caught (`catch_unwind`), rebuilt from its salvage checkpoint and
//!   retried with backoff before degrading the one ticket to
//!   abstention; corrupt checkpoints re-run their regeneration recipe;
//!   failed context builds fall back to the outcome-identical
//!   context-free path; client API misuse (unknown tickets, double
//!   resolves) returns typed errors ([`ClientEvent::Retired`],
//!   [`ResolveError`]) instead of panicking. The [`fault`] module's
//!   deterministic [`fault::FaultPlan`] injects all of these
//!   reproducibly; the chaos proptests pin the invariant that every
//!   submitted ticket still terminates with zero drops.
//! * **Schema-drift epochs** — [`ServeEngine::invalidate_db`] (or a
//!   bumped `DbMeta::revision`) drops cached contexts so new sessions
//!   rebuild, while in-flight sessions finish on their pinned
//!   `Arc<LinkContext>`.
//! * **Shard-level scale-out** — [`ShardedEngine`] partitions workers
//!   and the context cache by database (revision-stable FNV-1a
//!   routing, [`rts_core::context::db_shard`]) with work-stealing
//!   across idle shards; outcomes stay byte-identical to the
//!   single-shard engine (see the [`shard`] module docs).
//! * **Accounting** — per-request latency (p50/p95/p99), queue depth,
//!   context-cache hit rate and parked-session memory are recorded in
//!   a [`ServingStats`] snapshot.
//!
//! Outcome parity: with no deadline pressure, the engine's per-request
//! outcomes are *identical* to the batch pipeline's — every linking
//! run is a deterministic function of `(instance, seed)` and feedback
//! resolutions are deterministic per oracle, so worker scheduling
//! cannot change results (pinned by the `serve_engine_matches_batch…`
//! parity tests).
//!
//! ```text
//! crossbeam::thread::scope(|s| {
//!     for _ in 0..workers { s.spawn(|_| engine.worker_loop()); }
//!     // clients: submit → wait_event → resolve → … → Done
//! })
//! ```

pub mod api;
pub mod checkpoint;
mod engine;
pub mod error;
pub mod fault;
pub mod shard;
mod stats;
pub mod tenant;
pub mod wire;

pub use api::{drive_closed_loop, Engine};
pub use engine::{ClientEvent, ServeConfig, ServeEngine, ServeOutcome};
pub use error::{EngineError, ResolveError, SubmitError};
pub use fault::{FaultPlan, FaultSite};
pub use shard::{ShardedEngine, ShardedTicket};
pub use stats::{LatencySummary, ServingStats};
pub use tenant::{TenantId, TenantQuota, TicketId};

//! The worker-pool engine driving concurrent resumable linking
//! sessions. See the crate docs for the design overview.

use crate::checkpoint;
use crate::stats::{Counters, LatencySummary, LatencyWindow, ServingStats};
use crate::tenant::{FairQueue, TenantId, TenantQuota, TicketId};
use benchgen::schemagen::DbMeta;
use benchgen::Instance;
use parking_lot::{Condvar, Mutex};
use rts_core::abstention::{LinkScratch, RtsConfig, RtsOutcome};
use rts_core::bpp::Mbpp;
use rts_core::context::ContextCache;
use rts_core::pipeline::JointOutcome;
use rts_core::session::{CtxHandle, FlagQuery, FlagResolution, LinkSession, SessionState};
use simlm::{LinkTarget, SchemaLinker};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads the caller should spawn on
    /// [`ServeEngine::worker_loop`] (the engine itself never spawns —
    /// scoped threads keep every borrow checked).
    pub workers: usize,
    /// Admission-queue bound across all tenants; submits beyond it are
    /// rejected ([`SubmitError::QueueFull`]). `0` = unbounded. Resumed
    /// sessions never count against admission — they were already
    /// admitted.
    pub queue_capacity: usize,
    /// Per-tenant admission quota (max in-flight / max parked;
    /// `0` = unbounded). Submissions beyond it are rejected with
    /// [`SubmitError::QuotaExceeded`], so backpressure lands on the
    /// tenant generating the load instead of on everyone.
    pub quota: TenantQuota,
    /// Per-request latency budget. A request past it is *shed*: its
    /// remaining linking stages degrade to abstention (the answer is
    /// "hand off to a human", never a dropped connection). `None`
    /// disables shedding.
    pub deadline: Option<Duration>,
    /// How long a session may stay parked on one feedback query. Past
    /// it the flag is resolved as [`FlagResolution::Abstain`] — the
    /// paper's own hand-off verdict — and the request completes
    /// (degrade, never drop; same philosophy as deadline shedding).
    /// `None` = park forever.
    pub feedback_timeout: Option<Duration>,
    /// Budget for live generation state held by parked sessions. Past
    /// it the engine serializes the largest parked sessions through the
    /// serde shim (dropping their hidden-state stacks) and restores
    /// them bit-identically when feedback arrives. `0` = never
    /// checkpoint.
    pub parked_bytes_budget: usize,
    /// Context-cache capacity per link target (databases); `0` =
    /// unbounded.
    pub cache_capacity: usize,
    /// Runtime knobs threaded into every session (seed, reference
    /// paths, …).
    pub rts: RtsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: rts_core::par::thread_count(),
            queue_capacity: 64,
            quota: TenantQuota::default(),
            deadline: None,
            feedback_timeout: None,
            parked_bytes_budget: 0,
            cache_capacity: 0,
            rts: RtsConfig::default(),
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — retry later (client-side
    /// backpressure).
    QueueFull { capacity: usize },
    /// The submitting tenant is at its own quota (in-flight or parked
    /// bound) — other tenants are unaffected; retry after some of this
    /// tenant's requests complete.
    QuotaExceeded { tenant: TenantId, limit: usize },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} requests)")
            }
            SubmitError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant {tenant} at quota ({limit} requests)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A finished request.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Joint table+column linking outcome — abstained stages included
    /// (whether decided by the runtime, deadline shedding, or a
    /// feedback timeout).
    pub outcome: JointOutcome,
    /// Did deadline shedding degrade any stage to abstention?
    pub shed: bool,
    /// Did a feedback timeout resolve any of this request's flags to
    /// abstention?
    pub timed_out: bool,
    /// Submit-to-completion wall time.
    pub latency: Duration,
    /// Feedback resolutions this request consumed (client answers only
    /// — timeout resolutions are counted in the engine stats instead).
    pub n_feedback: usize,
}

/// What [`ServeEngine::wait_event`] delivers to a client.
#[derive(Debug, Clone)]
pub enum ClientEvent {
    /// The request is suspended on a branching flag of `target`
    /// linking; answer through [`ServeEngine::resolve`].
    NeedsFeedback {
        target: LinkTarget,
        query: FlagQuery,
    },
    /// The request finished; the ticket is now invalid.
    Done(ServeOutcome),
}

/// Request lifecycle. `Running` exists so a worker can own the session
/// outside the state lock while clients still see a coherent phase.
#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    AwaitingFeedback(FlagQuery),
    Done(ServeOutcome),
}

#[derive(Debug)]
struct Ticket<'a> {
    tenant: TenantId,
    inst: &'a Instance,
    submitted: Instant,
    deadline: Option<Instant>,
    /// When a parked session times out into abstention (`None` while
    /// not parked or with timeouts disabled).
    park_deadline: Option<Instant>,
    /// Stage currently being linked (tables first, then columns —
    /// mirroring `run_joint_linking_in`'s joint process).
    stage: LinkTarget,
    session: Option<LinkSession<'a>>,
    /// Serialized session state when the parked-bytes budget evicted
    /// the live session (mutually exclusive with `session`).
    checkpoint: Option<Vec<u8>>,
    /// A resolution that arrived while the session was checkpointed;
    /// the worker applies it after restoring.
    pending_resolution: Option<FlagResolution>,
    /// Live parked bytes billed for this ticket (0 once checkpointed).
    parked_billed: usize,
    tables: Option<RtsOutcome>,
    n_feedback: usize,
    timed_out: bool,
    phase: Phase,
}

#[derive(Debug)]
struct EngineState<'a> {
    /// Per-tenant sub-queues with deficit-round-robin dispatch;
    /// resumed sessions drain before admissions so feedback-ready work
    /// never starves behind fresh arrivals.
    queues: FairQueue,
    tickets: HashMap<TicketId, Ticket<'a>>,
    next_id: TicketId,
    /// Lower bound on the earliest parked-feedback deadline (`None` =
    /// no parked deadline). Tightened on every park, recomputed exactly
    /// by the expiry sweep; may be stale-early after an unpark, which
    /// only costs one harmless extra sweep — and spares every dispatch
    /// the O(tickets) scan while nothing can have lapsed.
    next_timeout: Option<Instant>,
}

/// The serving engine. Borrows the model artefacts for `'a`; sessions,
/// queues and caches live inside. Share it by reference across scoped
/// worker + client threads.
pub struct ServeEngine<'a> {
    model: &'a SchemaLinker,
    mbpp_tables: &'a Mbpp,
    mbpp_columns: &'a Mbpp,
    metas: HashMap<&'a str, &'a DbMeta>,
    cache: ContextCache,
    config: ServeConfig,
    state: Mutex<EngineState<'a>>,
    /// Wakes workers (new/resumed work, shutdown).
    work_cv: Condvar,
    /// Wakes clients (ticket phase transitions).
    client_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    completed: AtomicU64,
    /// Bounded: percentiles are computed over the most recent
    /// [`LATENCY_WINDOW`] completions, and memory stays O(1) however
    /// long the engine lives.
    latencies_ms: Mutex<LatencyWindow>,
}

/// Completed-request latency samples retained for percentile
/// reporting (a sliding window, oldest overwritten first).
const LATENCY_WINDOW: usize = 1 << 16;

impl<'a> ServeEngine<'a> {
    /// Build an engine over trained artefacts and the databases in
    /// `metas`. No contexts are compiled here — they materialize
    /// lazily, per database, on first request.
    pub fn new(
        model: &'a SchemaLinker,
        mbpp_tables: &'a Mbpp,
        mbpp_columns: &'a Mbpp,
        metas: &'a [DbMeta],
        config: ServeConfig,
    ) -> Self {
        Self {
            model,
            mbpp_tables,
            mbpp_columns,
            metas: metas.iter().map(|m| (m.name.as_str(), m)).collect(),
            cache: ContextCache::new(config.cache_capacity),
            config,
            state: Mutex::new(EngineState {
                queues: FairQueue::new(1),
                tickets: HashMap::new(),
                next_id: 0,
                next_timeout: None,
            }),
            work_cv: Condvar::new(),
            client_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            completed: AtomicU64::new(0),
            latencies_ms: Mutex::new(LatencyWindow::new(LATENCY_WINDOW)),
        }
    }

    fn meta_of(&self, inst: &Instance) -> &'a DbMeta {
        self.metas
            .get(inst.db_name.as_str())
            .unwrap_or_else(|| panic!("no database metadata for {}", inst.db_name))
    }

    /// Override a tenant's fair-share weight (default 1): a tenant with
    /// weight `w` is dispatched `w` admissions per scheduling cycle.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        self.state.lock().queues.set_weight(tenant, weight);
    }

    /// Admit a request by `tenant` for joint (tables → columns) linking
    /// of `inst`. Per-tenant quotas are checked before the global queue
    /// bound, so an over-quota tenant sees its own error, not everyone's.
    pub fn submit(&self, tenant: TenantId, inst: &'a Instance) -> Result<TicketId, SubmitError> {
        // Fail fast on unknown databases, before any queue state changes.
        let _ = self.meta_of(inst);
        let now = Instant::now();
        let mut st = self.state.lock();
        let quota = self.config.quota;
        let load = st.queues.load(tenant);
        if quota.max_in_flight > 0 && load.in_flight >= quota.max_in_flight {
            self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QuotaExceeded {
                tenant,
                limit: quota.max_in_flight,
            });
        }
        if quota.max_parked > 0 && load.parked >= quota.max_parked {
            self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QuotaExceeded {
                tenant,
                limit: quota.max_parked,
            });
        }
        if self.config.queue_capacity > 0 && st.queues.n_admission() >= self.config.queue_capacity {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.tickets.insert(
            id,
            Ticket {
                tenant,
                inst,
                submitted: now,
                deadline: self.config.deadline.map(|d| now + d),
                park_deadline: None,
                stage: LinkTarget::Tables,
                session: None,
                checkpoint: None,
                pending_resolution: None,
                parked_billed: 0,
                tables: None,
                n_feedback: 0,
                timed_out: false,
                phase: Phase::Queued,
            },
        );
        st.queues.push_admission(tenant, id);
        st.queues.note_admitted(tenant);
        self.counters.note_depth(st.queues.queued_len());
        drop(st);
        self.work_cv.notify_one();
        Ok(id)
    }

    /// Block until the ticket suspends on feedback or completes. On
    /// [`ClientEvent::Done`] the ticket is retired. Re-polling a
    /// suspended ticket returns the same query; the protocol is
    /// `submit → (wait_event → resolve)* → Done`.
    pub fn wait_event(&self, id: TicketId) -> ClientEvent {
        let mut st = self.state.lock();
        loop {
            let ticket = st.tickets.get(&id).expect("unknown or retired ticket");
            match &ticket.phase {
                Phase::AwaitingFeedback(query) => {
                    return ClientEvent::NeedsFeedback {
                        target: ticket.stage,
                        query: query.clone(),
                    };
                }
                Phase::Done(_) => {
                    let ticket = st.tickets.remove(&id).expect("ticket present");
                    let Phase::Done(outcome) = ticket.phase else {
                        unreachable!("phase checked above");
                    };
                    return ClientEvent::Done(outcome);
                }
                Phase::Queued | Phase::Running => self.client_cv.wait(&mut st),
            }
        }
    }

    /// Apply feedback to a suspended ticket and re-queue it. `query` is
    /// the [`FlagQuery`] the client is answering (from its last
    /// [`ClientEvent::NeedsFeedback`]) — the flag's identity, so a
    /// stale answer can never land on a different flag. Resumed work
    /// bypasses admission bounds — it was already admitted.
    ///
    /// Returns `false` when the resolution lost a race against a
    /// feedback timeout: either the flag was already answered with
    /// abstention (the next [`ServeEngine::wait_event`] reports the
    /// outcome), or — with a chained stage in between — the ticket is
    /// already suspended on a *different* flag than the one the client
    /// saw. A protocol race, not an error; the answer is dropped, never
    /// misapplied. Panics on a ticket that never asked for feedback.
    pub fn resolve(&self, id: TicketId, query: &FlagQuery, resolution: FlagResolution) -> bool {
        let mut st = self.state.lock();
        let ticket = st.tickets.get_mut(&id).expect("unknown or retired ticket");
        match &ticket.phase {
            Phase::AwaitingFeedback(current) if current == query => {}
            Phase::AwaitingFeedback(_) => {
                // The flag the client saw timed out, the request moved
                // on, and it is now parked on a newer flag: the stale
                // answer must not be applied to it.
                assert!(
                    ticket.timed_out,
                    "resolve with a query the ticket never raised"
                );
                return false;
            }
            _ => {
                assert!(
                    ticket.timed_out || matches!(ticket.phase, Phase::Done(_)),
                    "resolve on a ticket that is not awaiting feedback"
                );
                return false;
            }
        }
        ticket.n_feedback += 1;
        self.unpark(&mut st, id, resolution);
        self.counters
            .feedback_rounds
            .fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.work_cv.notify_one();
        true
    }

    /// The one unpark protocol, shared by client resolutions and
    /// feedback-timeout expiry: release the parked billing, apply the
    /// resolution to the live session (or stash it for the worker to
    /// apply after restoring a checkpointed one), and re-queue the
    /// ticket on its tenant's resume lane. Callers bill their own
    /// counters (`feedback_rounds` vs `timed_out`) around it.
    fn unpark(&self, st: &mut EngineState<'a>, id: TicketId, resolution: FlagResolution) {
        let ticket = st.tickets.get_mut(&id).expect("unparked ticket exists");
        self.counters.note_unparked(ticket.parked_billed);
        ticket.parked_billed = 0;
        ticket.park_deadline = None;
        match ticket.session.as_mut() {
            Some(session) => session.resolve(resolution),
            // Checkpointed while parked: the worker restores the
            // session and applies this resolution before stepping.
            None => ticket.pending_resolution = Some(resolution),
        }
        ticket.phase = Phase::Queued;
        let tenant = ticket.tenant;
        st.queues.push_resume(tenant, id);
        st.queues.note_unparked(tenant);
    }

    /// Ask workers to exit once the queues drain. Clients must be done
    /// (or abandoned) first — a parked ticket never blocks shutdown,
    /// but an in-queue one is still processed.
    pub fn shutdown(&self) {
        // Flip the flag *under the state lock*: a worker that just saw
        // `shutdown == false` while holding the lock is guaranteed to
        // reach `work_cv.wait` (atomically releasing it) before this
        // store can happen, so the notify below always lands. Storing
        // outside the lock could slot the store+notify between a
        // worker's check and its wait — a lost wakeup that parks the
        // worker forever.
        let st = self.state.lock();
        self.shutdown.store(true, Ordering::SeqCst);
        drop(st);
        self.work_cv.notify_all();
    }

    /// Resolve every parked ticket whose feedback deadline lapsed with
    /// the abstention verdict and re-queue it. Called by workers on
    /// every dispatch, so timeouts fire as soon as a worker is free to
    /// act on them. O(1) while nothing can have lapsed (the cached
    /// `next_timeout` bound); the full ticket scan runs only when a
    /// deadline actually passed, and re-tightens the bound.
    fn expire_lapsed_parks(&self, st: &mut EngineState<'a>) {
        if self.config.feedback_timeout.is_none() {
            return;
        }
        let now = Instant::now();
        match st.next_timeout {
            None => return,
            Some(bound) if now < bound => return,
            Some(_) => {}
        }
        let lapsed: Vec<TicketId> = st
            .tickets
            .iter()
            .filter(|(_, t)| {
                matches!(t.phase, Phase::AwaitingFeedback(_))
                    && t.park_deadline.is_some_and(|d| now >= d)
            })
            .map(|(&id, _)| id)
            .collect();
        st.next_timeout = st
            .tickets
            .values()
            .filter(|t| matches!(t.phase, Phase::AwaitingFeedback(_)))
            .filter_map(|t| t.park_deadline)
            .filter(|&d| d > now)
            .min();
        for id in lapsed {
            let ticket = st.tickets.get_mut(&id).expect("lapsed ticket exists");
            ticket.timed_out = true;
            // The timeout is billed as an unconsulted abstention: no
            // human was reached, the stage degrades to the hand-off
            // verdict (never drop).
            self.unpark(st, id, FlagResolution::Abstain { consulted: false });
            self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Earliest possible parked-feedback deadline, bounding how long an
    /// idle worker may sleep. The cached bound may be stale-early after
    /// an unpark — the woken worker just sweeps, finds nothing, and
    /// sleeps again with a corrected bound.
    fn next_park_deadline(&self, st: &EngineState<'a>) -> Option<Instant> {
        self.config.feedback_timeout?;
        st.next_timeout
    }

    /// The worker body: spawn `config.workers` scoped threads on this.
    /// Returns when [`ServeEngine::shutdown`] is called and no queued
    /// work remains.
    pub fn worker_loop(&self) {
        let mut scratch = LinkScratch::default();
        loop {
            let id = {
                let mut st = self.state.lock();
                loop {
                    self.expire_lapsed_parks(&mut st);
                    if let Some(id) = st.queues.pop() {
                        break id;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match self.next_park_deadline(&st) {
                        // Sleep only until the next timeout can fire; a
                        // stalled tenant must not park forever just
                        // because no new work arrives to wake us.
                        Some(deadline) => {
                            let wait = deadline.saturating_duration_since(Instant::now());
                            let _ = self.work_cv.wait_for(&mut st, wait);
                        }
                        None => self.work_cv.wait(&mut st),
                    }
                }
            };
            self.process(id, &mut scratch);
        }
    }

    /// Run one ticket forward until it parks on feedback, finishes, or
    /// sheds on its deadline.
    fn process(&self, id: TicketId, scratch: &mut LinkScratch) {
        let (inst, tenant, mut stage, mut session, mut checkpointed, mut resolution, deadline) = {
            let mut st = self.state.lock();
            let ticket = st.tickets.get_mut(&id).expect("ticket exists");
            ticket.phase = Phase::Running;
            (
                ticket.inst,
                ticket.tenant,
                ticket.stage,
                ticket.session.take(),
                ticket.checkpoint.take(),
                ticket.pending_resolution.take(),
                ticket.deadline,
            )
        };
        let meta = self.meta_of(inst);
        loop {
            // Abstention-as-backpressure: past the budget, the
            // remaining stages answer with the paper's own hand-off
            // verdict instead of dropping the request.
            if deadline.is_some_and(|d| Instant::now() > d) {
                if let Some(bytes) = checkpointed.take() {
                    // The shed ticket's checkpoint is never restored —
                    // return its bytes to the accounting or the gauge
                    // would read non-zero forever.
                    self.counters.note_checkpoint_discarded(bytes.len());
                }
                self.finalize(id, tenant, stage, None, true);
                return;
            }
            let mut s = match session.take() {
                Some(s) => s,
                None => match checkpointed.take() {
                    Some(bytes) => {
                        self.restore_session(inst, meta, stage, &bytes, &resolution, scratch)
                    }
                    None => self.open_session(inst, meta, stage),
                },
            };
            if let Some(res) = resolution.take() {
                // Feedback (or a timeout verdict) that arrived while
                // the session was checkpointed out of memory.
                s.resolve(res);
            }
            match s.step(scratch) {
                SessionState::NeedsFeedback(query) => {
                    let held = s.held_bytes();
                    let park_deadline = self.config.feedback_timeout.map(|t| Instant::now() + t);
                    let mut st = self.state.lock();
                    if let Some(deadline) = park_deadline {
                        st.next_timeout = Some(match st.next_timeout {
                            Some(cur) => cur.min(deadline),
                            None => deadline,
                        });
                    }
                    let ticket = st.tickets.get_mut(&id).expect("ticket exists");
                    ticket.session = Some(s);
                    ticket.stage = stage;
                    ticket.parked_billed = held;
                    ticket.park_deadline = park_deadline;
                    ticket.phase = Phase::AwaitingFeedback(query);
                    st.queues.note_parked(tenant);
                    self.counters.note_parked(held);
                    self.enforce_parked_budget(&mut st);
                    drop(st);
                    self.client_cv.notify_all();
                    // A parked deadline may now be the earliest wake-up:
                    // make sure some idle worker re-arms its sleep.
                    if self.config.feedback_timeout.is_some() {
                        self.work_cv.notify_one();
                    }
                    return;
                }
                SessionState::Done(outcome) => match stage {
                    LinkTarget::Tables => {
                        let mut st = self.state.lock();
                        let ticket = st.tickets.get_mut(&id).expect("ticket exists");
                        ticket.tables = Some(outcome);
                        ticket.stage = LinkTarget::Columns;
                        stage = LinkTarget::Columns;
                        // Session dropped; the next loop iteration
                        // opens the chained columns session.
                    }
                    LinkTarget::Columns => {
                        self.finalize(id, tenant, stage, Some(outcome), false);
                        return;
                    }
                },
            }
        }
    }

    /// Evict live parked sessions (largest first) into serialized
    /// checkpoints until the parked-bytes budget holds. Serialization
    /// is cheap — the checkpoint stores the regeneration recipe, not
    /// the hidden stacks — so running under the state lock is fine;
    /// the expensive re-synthesis happens on the worker that resumes
    /// the ticket.
    fn enforce_parked_budget(&self, st: &mut EngineState<'a>) {
        let budget = self.config.parked_bytes_budget;
        if budget == 0 {
            return;
        }
        while self.counters.parked_bytes.load(Ordering::Relaxed) > budget {
            let victim = st
                .tickets
                .iter()
                .filter(|(_, t)| {
                    matches!(t.phase, Phase::AwaitingFeedback(_)) && t.session.is_some()
                })
                .max_by_key(|(_, t)| t.parked_billed)
                .map(|(&id, _)| id);
            let Some(vid) = victim else { break };
            let ticket = st.tickets.get_mut(&vid).expect("victim exists");
            let session = ticket.session.take().expect("victim has a live session");
            let bytes = checkpoint::encode(&session.checkpoint());
            self.counters
                .note_checkpointed(ticket.parked_billed, bytes.len());
            ticket.parked_billed = 0;
            ticket.checkpoint = Some(bytes);
            // `session` drops here — its hidden stacks are freed.
        }
    }

    fn session_ctx(&self, meta: &'a DbMeta, stage: LinkTarget) -> Option<CtxHandle<'a>> {
        // The reference-linking knob runs context-free (the session
        // ignores a context under it anyway; skip the cache churn).
        (!self.config.rts.reference_linking).then(|| CtxHandle::Shared(self.cache.get(meta, stage)))
    }

    fn open_session(
        &self,
        inst: &'a Instance,
        meta: &'a DbMeta,
        stage: LinkTarget,
    ) -> LinkSession<'a> {
        let mbpp = match stage {
            LinkTarget::Tables => self.mbpp_tables,
            LinkTarget::Columns => self.mbpp_columns,
        };
        LinkSession::new(
            self.model,
            mbpp,
            inst,
            meta,
            stage,
            self.session_ctx(meta, stage),
            None,
            &self.config.rts,
        )
    }

    /// Rebuild a checkpointed session: deserialize the recipe and
    /// re-synthesize the evicted round bit-identically (generation is
    /// deterministic in instance + overrides). `resolution` is the
    /// stashed verdict about to be applied: when it discards the round
    /// anyway (an abstention finishes the session without reading it;
    /// a pin marks the stream stale and regenerates), the synthesis is
    /// skipped — only a `Continue` actually re-reads the parked round.
    fn restore_session(
        &self,
        inst: &'a Instance,
        meta: &'a DbMeta,
        stage: LinkTarget,
        bytes: &[u8],
        resolution: &Option<FlagResolution>,
        scratch: &mut LinkScratch,
    ) -> LinkSession<'a> {
        let mut cp = checkpoint::decode(bytes);
        if matches!(
            resolution,
            Some(FlagResolution::Abstain { .. } | FlagResolution::Pin(_))
        ) {
            cp.has_round = false;
        }
        let mbpp = match stage {
            LinkTarget::Tables => self.mbpp_tables,
            LinkTarget::Columns => self.mbpp_columns,
        };
        let session = LinkSession::restore(
            self.model,
            mbpp,
            inst,
            meta,
            stage,
            self.session_ctx(meta, stage),
            &self.config.rts,
            &cp,
            &mut scratch.synth,
        );
        self.counters.note_restored(bytes.len());
        session
    }

    /// The abstention every shed stage degrades to.
    fn shed_outcome() -> RtsOutcome {
        RtsOutcome {
            abstained: true,
            predicted: Vec::new(),
            correct: false,
            would_be_correct: false,
            n_interventions: 0,
            n_flags: 0,
        }
    }

    /// Retire a ticket: `columns` is the finished column outcome, or
    /// `None` when shedding cut the run short at `stage`.
    fn finalize(
        &self,
        id: TicketId,
        tenant: TenantId,
        stage: LinkTarget,
        columns: Option<RtsOutcome>,
        shed: bool,
    ) {
        let mut st = self.state.lock();
        let ticket = st.tickets.get_mut(&id).expect("ticket exists");
        let tables = match ticket.tables.take() {
            Some(t) => t,
            None => {
                debug_assert!(shed && stage == LinkTarget::Tables);
                Self::shed_outcome()
            }
        };
        let columns = columns.unwrap_or_else(Self::shed_outcome);
        let outcome = ServeOutcome {
            outcome: JointOutcome { tables, columns },
            shed,
            timed_out: ticket.timed_out,
            latency: ticket.submitted.elapsed(),
            n_feedback: ticket.n_feedback,
        };
        self.latencies_ms
            .lock()
            .push(outcome.latency.as_secs_f64() * 1e3);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if shed {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
        }
        ticket.phase = Phase::Done(outcome);
        st.queues.note_done(tenant);
        drop(st);
        self.client_cv.notify_all();
    }

    /// Counter snapshot (latency percentiles recomputed on each call).
    pub fn stats(&self) -> ServingStats {
        // Copy the samples out under the lock; sort/summarize outside
        // it so workers finalizing requests are never stalled behind a
        // percentile computation.
        let samples = self.latencies_ms.lock().snapshot();
        let latency = LatencySummary::from_samples(&samples);
        let (tenants_seen, tenant_in_flight_peak) = {
            let st = self.state.lock();
            (st.queues.n_tenants(), st.queues.max_in_flight_peak())
        };
        ServingStats {
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            rejected_quota: self.counters.rejected_quota.load(Ordering::Relaxed),
            feedback_rounds: self.counters.feedback_rounds.load(Ordering::Relaxed),
            timed_out_to_abstention: self.counters.timed_out.load(Ordering::Relaxed),
            latency,
            queue_depth_max: self.counters.depth_max.load(Ordering::Relaxed),
            queue_depth_mean: self.counters.depth_mean(),
            cache: self.cache.stats(),
            parked_bytes_peak: self.counters.parked_bytes_peak.load(Ordering::Relaxed),
            parked_sessions_peak: self.counters.parked_sessions_peak.load(Ordering::Relaxed),
            parked_bytes_now: self.counters.parked_bytes.load(Ordering::Relaxed),
            parked_sessions_now: self.counters.parked_sessions.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            restores: self.counters.restores.load(Ordering::Relaxed),
            checkpoint_bytes_peak: self.counters.checkpoint_bytes_peak.load(Ordering::Relaxed),
            checkpoint_bytes_now: self.counters.checkpoint_bytes.load(Ordering::Relaxed),
            tenants_seen,
            tenant_in_flight_peak,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_core::abstention::MitigationPolicy;
    use rts_core::bpp::{MbppConfig, ProbeConfig};
    use rts_core::branching::BranchDataset;
    use rts_core::human::{Expertise, HumanOracle};
    use rts_core::session::resolve_flag;

    struct Fx {
        bench: benchgen::Benchmark,
        model: SchemaLinker,
        mbpp_t: Mbpp,
        mbpp_c: Mbpp,
    }

    fn fixture() -> Fx {
        let bench = benchgen::BenchmarkProfile::bird_like()
            .scaled(0.04)
            .generate(77);
        let model = SchemaLinker::new("bird", 5);
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds_t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 300);
        let ds_c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 300);
        let mbpp_t = Mbpp::train(&ds_t, &cfg);
        let mbpp_c = Mbpp::train(&ds_c, &cfg);
        Fx {
            bench,
            model,
            mbpp_t,
            mbpp_c,
        }
    }

    /// Closed-loop client: submit every instance of `slice` as
    /// `tenant`, answering feedback with the oracle, collecting
    /// outcomes by instance id.
    fn client_run<'a>(
        engine: &ServeEngine<'a>,
        tenant: TenantId,
        instances: &'a [benchgen::Instance],
        oracle: &HumanOracle,
    ) -> Vec<(u64, ServeOutcome)> {
        let policy = MitigationPolicy::Human(oracle);
        let mut out = Vec::new();
        for inst in instances {
            let ticket = loop {
                match engine.submit(tenant, inst) {
                    Ok(t) => break t,
                    Err(SubmitError::QueueFull { .. } | SubmitError::QuotaExceeded { .. }) => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            };
            loop {
                match engine.wait_event(ticket) {
                    ClientEvent::NeedsFeedback { query, .. } => {
                        engine.resolve(ticket, &query, resolve_flag(&policy, inst, &query));
                    }
                    ClientEvent::Done(outcome) => {
                        out.push((inst.id, outcome));
                        break;
                    }
                }
            }
        }
        out
    }

    fn assert_batch_parity(
        fx: &Fx,
        engine: &ServeEngine<'_>,
        oracle: &HumanOracle,
        instances: &[benchgen::Instance],
        all: &[(u64, ServeOutcome)],
    ) {
        let contexts = rts_core::context::LinkContexts::build(&fx.bench);
        let policy = MitigationPolicy::Human(oracle);
        let mut scratch = LinkScratch::default();
        for (id, served) in all {
            let inst = instances.iter().find(|i| i.id == *id).unwrap();
            let batch = rts_core::pipeline::run_joint_linking_in(
                &fx.model,
                &fx.mbpp_t,
                &fx.mbpp_c,
                inst,
                &fx.bench,
                &contexts,
                &policy,
                &engine.config().rts,
                &mut scratch,
            );
            assert_eq!(
                format!("{:?}", served.outcome),
                format!("{batch:?}"),
                "instance {id}"
            );
            assert!(!served.shed);
            assert!(!served.timed_out);
        }
    }

    #[test]
    fn engine_serves_concurrent_tenants_with_feedback() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(40).cloned().collect();
        let config = ServeConfig {
            workers: 3,
            queue_capacity: 4,
            cache_capacity: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let n_clients = 4;
        let chunks: Vec<&[benchgen::Instance]> = instances.chunks(10).collect();
        let results: Vec<Vec<(u64, ServeOutcome)>> = crossbeam::thread::scope(|s| {
            for _ in 0..engine.config().workers {
                s.spawn(|_| engine.worker_loop());
            }
            let handles: Vec<_> = (0..n_clients)
                .map(|c| {
                    let engine = &engine;
                    let chunk = chunks[c];
                    let oracle = &oracle;
                    // Each client is its own tenant: the fair queue and
                    // per-tenant accounting are on the hot path.
                    s.spawn(move |_| client_run(engine, c as TenantId, chunk, oracle))
                })
                .collect();
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("client panicked"))
                .collect();
            engine.shutdown();
            results
        })
        .expect("serve scope panicked");

        let all: Vec<(u64, ServeOutcome)> = results.into_iter().flatten().collect();
        assert_eq!(all.len(), instances.len());
        let stats = engine.stats();
        assert_eq!(stats.completed, instances.len() as u64);
        assert_eq!(stats.shed, 0, "no deadline configured");
        assert_eq!(stats.timed_out_to_abstention, 0, "no timeout configured");
        assert!(
            stats.feedback_rounds > 0,
            "a human workload must consult at least once"
        );
        assert!(stats.cache.hits > 0, "contexts must be reused");
        assert_eq!(stats.tenants_seen, n_clients);
        assert!(
            stats.tenant_in_flight_peak <= 1,
            "closed-loop clients keep one request in flight"
        );
        assert_eq!(stats.parked_bytes_now, 0, "drained engine parks nothing");
        assert_eq!(stats.parked_sessions_now, 0);
        // Engine outcomes ≡ the batch runtime, instance by instance.
        assert_batch_parity(&fx, &engine, &oracle, &instances, &all);
    }

    #[test]
    fn checkpointed_parked_sessions_restore_bit_identically() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(24).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            // A 1-byte budget forces *every* parked session through the
            // checkpoint → restore path.
            parked_bytes_budget: 1,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len());
        let stats = engine.stats();
        assert!(
            stats.checkpoints > 0 && stats.restores == stats.checkpoints,
            "every park must checkpoint and restore (cp {}, restored {})",
            stats.checkpoints,
            stats.restores
        );
        assert_eq!(stats.checkpoint_bytes_now, 0, "all checkpoints consumed");
        assert_eq!(stats.parked_bytes_now, 0, "all live parked state released");
        // Checkpointing must never change answers — only where the
        // parked state lives.
        assert_batch_parity(&fx, &engine, &oracle, &instances, &outcomes);
    }

    #[test]
    fn feedback_timeout_degrades_to_abstention_not_drop() {
        let fx = fixture();
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(16).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            feedback_timeout: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        // A client that NEVER answers: it just waits for completion.
        let outcomes: Vec<(u64, ServeOutcome)> = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let mut out = Vec::new();
            for inst in &instances {
                let ticket = engine.submit(0, inst).expect("queue has room");
                loop {
                    match engine.wait_event(ticket) {
                        ClientEvent::NeedsFeedback { .. } => {
                            // Stall: let the engine time the flag out.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        ClientEvent::Done(done) => {
                            out.push((inst.id, done));
                            break;
                        }
                    }
                }
            }
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len(), "timeouts never drop");
        let stats = engine.stats();
        assert!(
            stats.timed_out_to_abstention > 0,
            "a stalled client must hit the feedback timeout"
        );
        let mut timed_out_seen = false;
        for (id, o) in &outcomes {
            if o.timed_out {
                timed_out_seen = true;
                assert!(
                    o.outcome.abstained(),
                    "timed-out request must abstain (instance {id})"
                );
                assert_eq!(o.n_feedback, 0, "the stalled client never answered");
            }
        }
        assert!(timed_out_seen);
        assert_eq!(stats.parked_bytes_now, 0);
        assert_eq!(stats.parked_sessions_now, 0);
    }

    #[test]
    fn zero_deadline_sheds_to_abstention_not_drops() {
        let fx = fixture();
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(8).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len(), "shedding never drops");
        for (_, o) in &outcomes {
            assert!(o.shed);
            assert!(o.outcome.abstained(), "shed degrades to abstention");
        }
        let stats = engine.stats();
        assert_eq!(stats.shed, instances.len() as u64);
        assert_eq!(
            stats.cache.misses, 0,
            "an instantly-shed request never builds a context"
        );
    }

    #[test]
    fn bounded_admission_rejects_when_full() {
        let fx = fixture();
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        // No workers running: the queue only fills.
        let a = engine.submit(0, &fx.bench.split.dev[0]);
        let b = engine.submit(1, &fx.bench.split.dev[1]);
        let c = engine.submit(2, &fx.bench.split.dev[2]);
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(c, Err(SubmitError::QueueFull { capacity: 2 }));
        assert_eq!(engine.stats().rejected, 1);
        assert_eq!(engine.stats().queue_depth_max, 2);
    }

    #[test]
    fn tenant_quota_rejects_only_the_offender() {
        let fx = fixture();
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 0,
            quota: TenantQuota {
                max_in_flight: 2,
                max_parked: 0,
            },
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        // No workers: everything stays in flight. Tenant 0 fills its
        // quota; tenant 1 is untouched by tenant 0's backlog.
        assert!(engine.submit(0, &fx.bench.split.dev[0]).is_ok());
        assert!(engine.submit(0, &fx.bench.split.dev[1]).is_ok());
        assert_eq!(
            engine.submit(0, &fx.bench.split.dev[2]),
            Err(SubmitError::QuotaExceeded {
                tenant: 0,
                limit: 2
            })
        );
        assert!(engine.submit(1, &fx.bench.split.dev[3]).is_ok());
        let stats = engine.stats();
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.rejected, 0, "quota rejections are billed apart");
        assert_eq!(stats.tenants_seen, 2);
        assert_eq!(stats.tenant_in_flight_peak, 2);
    }
}

//! The worker-pool engine driving concurrent resumable linking
//! sessions. See the crate docs for the design overview.

use crate::stats::{Counters, LatencySummary, LatencyWindow, ServingStats};
use benchgen::schemagen::DbMeta;
use benchgen::Instance;
use parking_lot::{Condvar, Mutex};
use rts_core::abstention::{LinkScratch, RtsConfig, RtsOutcome};
use rts_core::bpp::Mbpp;
use rts_core::context::ContextCache;
use rts_core::pipeline::JointOutcome;
use rts_core::session::{CtxHandle, FlagQuery, FlagResolution, LinkSession, SessionState};
use simlm::{LinkTarget, SchemaLinker};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Handle to one in-flight request.
pub type TicketId = u64;

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads the caller should spawn on
    /// [`ServeEngine::worker_loop`] (the engine itself never spawns —
    /// scoped threads keep every borrow checked).
    pub workers: usize,
    /// Admission-queue bound; submits beyond it are rejected
    /// ([`SubmitError::QueueFull`]). `0` = unbounded. Resumed sessions
    /// never count against admission — they were already admitted.
    pub queue_capacity: usize,
    /// Per-request latency budget. A request past it is *shed*: its
    /// remaining linking stages degrade to abstention (the answer is
    /// "hand off to a human", never a dropped connection). `None`
    /// disables shedding.
    pub deadline: Option<Duration>,
    /// Context-cache capacity per link target (databases); `0` =
    /// unbounded.
    pub cache_capacity: usize,
    /// Runtime knobs threaded into every session (seed, reference
    /// paths, …).
    pub rts: RtsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: rts_core::par::thread_count(),
            queue_capacity: 64,
            deadline: None,
            cache_capacity: 0,
            rts: RtsConfig::default(),
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — retry later (client-side
    /// backpressure).
    QueueFull { capacity: usize },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} requests)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A finished request.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Joint table+column linking outcome — abstained stages included
    /// (whether decided by the runtime or by deadline shedding).
    pub outcome: JointOutcome,
    /// Did deadline shedding degrade any stage to abstention?
    pub shed: bool,
    /// Submit-to-completion wall time.
    pub latency: Duration,
    /// Feedback resolutions this request consumed.
    pub n_feedback: usize,
}

/// What [`ServeEngine::wait_event`] delivers to a client.
#[derive(Debug, Clone)]
pub enum ClientEvent {
    /// The request is suspended on a branching flag of `target`
    /// linking; answer through [`ServeEngine::resolve`].
    NeedsFeedback {
        target: LinkTarget,
        query: FlagQuery,
    },
    /// The request finished; the ticket is now invalid.
    Done(ServeOutcome),
}

/// Request lifecycle. `Running` exists so a worker can own the session
/// outside the state lock while clients still see a coherent phase.
#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    AwaitingFeedback(FlagQuery),
    Done(ServeOutcome),
}

#[derive(Debug)]
struct Ticket<'a> {
    inst: &'a Instance,
    submitted: Instant,
    deadline: Option<Instant>,
    /// Stage currently being linked (tables first, then columns —
    /// mirroring `run_joint_linking_in`'s joint process).
    stage: LinkTarget,
    session: Option<LinkSession<'a>>,
    tables: Option<RtsOutcome>,
    n_feedback: usize,
    phase: Phase,
}

#[derive(Debug)]
struct EngineState<'a> {
    /// New requests, bounded by `ServeConfig::queue_capacity`.
    admission: VecDeque<TicketId>,
    /// Resumed sessions; drained before admission so feedback-ready
    /// work never starves behind fresh arrivals.
    resume: VecDeque<TicketId>,
    tickets: HashMap<TicketId, Ticket<'a>>,
    next_id: TicketId,
}

/// The serving engine. Borrows the model artefacts for `'a`; sessions,
/// queues and caches live inside. Share it by reference across scoped
/// worker + client threads.
pub struct ServeEngine<'a> {
    model: &'a SchemaLinker,
    mbpp_tables: &'a Mbpp,
    mbpp_columns: &'a Mbpp,
    metas: HashMap<&'a str, &'a DbMeta>,
    cache: ContextCache,
    config: ServeConfig,
    state: Mutex<EngineState<'a>>,
    /// Wakes workers (new/resumed work, shutdown).
    work_cv: Condvar,
    /// Wakes clients (ticket phase transitions).
    client_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    completed: AtomicU64,
    /// Bounded: percentiles are computed over the most recent
    /// [`LATENCY_WINDOW`] completions, and memory stays O(1) however
    /// long the engine lives.
    latencies_ms: Mutex<LatencyWindow>,
}

/// Completed-request latency samples retained for percentile
/// reporting (a sliding window, oldest overwritten first).
const LATENCY_WINDOW: usize = 1 << 16;

impl<'a> ServeEngine<'a> {
    /// Build an engine over trained artefacts and the databases in
    /// `metas`. No contexts are compiled here — they materialize
    /// lazily, per tenant, on first request.
    pub fn new(
        model: &'a SchemaLinker,
        mbpp_tables: &'a Mbpp,
        mbpp_columns: &'a Mbpp,
        metas: &'a [DbMeta],
        config: ServeConfig,
    ) -> Self {
        Self {
            model,
            mbpp_tables,
            mbpp_columns,
            metas: metas.iter().map(|m| (m.name.as_str(), m)).collect(),
            cache: ContextCache::new(config.cache_capacity),
            config,
            state: Mutex::new(EngineState {
                admission: VecDeque::new(),
                resume: VecDeque::new(),
                tickets: HashMap::new(),
                next_id: 0,
            }),
            work_cv: Condvar::new(),
            client_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            completed: AtomicU64::new(0),
            latencies_ms: Mutex::new(LatencyWindow::new(LATENCY_WINDOW)),
        }
    }

    fn meta_of(&self, inst: &Instance) -> &'a DbMeta {
        self.metas
            .get(inst.db_name.as_str())
            .unwrap_or_else(|| panic!("no database metadata for {}", inst.db_name))
    }

    /// Admit a request for joint (tables → columns) linking of `inst`.
    pub fn submit(&self, inst: &'a Instance) -> Result<TicketId, SubmitError> {
        // Fail fast on unknown tenants, before any queue state changes.
        let _ = self.meta_of(inst);
        let now = Instant::now();
        let mut st = self.state.lock();
        if self.config.queue_capacity > 0 && st.admission.len() >= self.config.queue_capacity {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.tickets.insert(
            id,
            Ticket {
                inst,
                submitted: now,
                deadline: self.config.deadline.map(|d| now + d),
                stage: LinkTarget::Tables,
                session: None,
                tables: None,
                n_feedback: 0,
                phase: Phase::Queued,
            },
        );
        st.admission.push_back(id);
        self.counters
            .note_depth(st.admission.len() + st.resume.len());
        drop(st);
        self.work_cv.notify_one();
        Ok(id)
    }

    /// Block until the ticket suspends on feedback or completes. On
    /// [`ClientEvent::Done`] the ticket is retired. Re-polling a
    /// suspended ticket returns the same query; the protocol is
    /// `submit → (wait_event → resolve)* → Done`.
    pub fn wait_event(&self, id: TicketId) -> ClientEvent {
        let mut st = self.state.lock();
        loop {
            let ticket = st.tickets.get(&id).expect("unknown or retired ticket");
            match &ticket.phase {
                Phase::AwaitingFeedback(query) => {
                    return ClientEvent::NeedsFeedback {
                        target: ticket.stage,
                        query: query.clone(),
                    };
                }
                Phase::Done(_) => {
                    let ticket = st.tickets.remove(&id).expect("ticket present");
                    let Phase::Done(outcome) = ticket.phase else {
                        unreachable!("phase checked above");
                    };
                    return ClientEvent::Done(outcome);
                }
                Phase::Queued | Phase::Running => self.client_cv.wait(&mut st),
            }
        }
    }

    /// Apply feedback to a suspended ticket and re-queue it. Resumed
    /// work bypasses admission bounds — it was already admitted.
    pub fn resolve(&self, id: TicketId, resolution: FlagResolution) {
        let mut st = self.state.lock();
        let ticket = st.tickets.get_mut(&id).expect("unknown or retired ticket");
        assert!(
            matches!(ticket.phase, Phase::AwaitingFeedback(_)),
            "resolve on a ticket that is not awaiting feedback"
        );
        let session = ticket.session.as_mut().expect("parked session present");
        self.counters.note_unparked(session.held_bytes());
        session.resolve(resolution);
        ticket.n_feedback += 1;
        ticket.phase = Phase::Queued;
        st.resume.push_back(id);
        self.counters
            .feedback_rounds
            .fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.work_cv.notify_one();
    }

    /// Ask workers to exit once the queues drain. Clients must be done
    /// (or abandoned) first — a parked ticket never blocks shutdown,
    /// but an in-queue one is still processed.
    pub fn shutdown(&self) {
        // Flip the flag *under the state lock*: a worker that just saw
        // `shutdown == false` while holding the lock is guaranteed to
        // reach `work_cv.wait` (atomically releasing it) before this
        // store can happen, so the notify below always lands. Storing
        // outside the lock could slot the store+notify between a
        // worker's check and its wait — a lost wakeup that parks the
        // worker forever.
        let st = self.state.lock();
        self.shutdown.store(true, Ordering::SeqCst);
        drop(st);
        self.work_cv.notify_all();
    }

    /// The worker body: spawn `config.workers` scoped threads on this.
    /// Returns when [`ServeEngine::shutdown`] is called and no queued
    /// work remains.
    pub fn worker_loop(&self) {
        let mut scratch = LinkScratch::default();
        loop {
            let id = {
                let mut st = self.state.lock();
                loop {
                    if let Some(id) = st.resume.pop_front() {
                        break id;
                    }
                    if let Some(id) = st.admission.pop_front() {
                        break id;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    self.work_cv.wait(&mut st);
                }
            };
            self.process(id, &mut scratch);
        }
    }

    /// Run one ticket forward until it parks on feedback, finishes, or
    /// sheds on its deadline.
    fn process(&self, id: TicketId, scratch: &mut LinkScratch) {
        let (inst, mut stage, mut session, deadline) = {
            let mut st = self.state.lock();
            let ticket = st.tickets.get_mut(&id).expect("ticket exists");
            ticket.phase = Phase::Running;
            (
                ticket.inst,
                ticket.stage,
                ticket.session.take(),
                ticket.deadline,
            )
        };
        let meta = self.meta_of(inst);
        loop {
            // Abstention-as-backpressure: past the budget, the
            // remaining stages answer with the paper's own hand-off
            // verdict instead of dropping the request.
            if deadline.is_some_and(|d| Instant::now() > d) {
                self.finalize(id, stage, None, true);
                return;
            }
            let mut s = match session.take() {
                Some(s) => s,
                None => self.open_session(inst, meta, stage),
            };
            match s.step(scratch) {
                SessionState::NeedsFeedback(query) => {
                    let held = s.held_bytes();
                    let mut st = self.state.lock();
                    let ticket = st.tickets.get_mut(&id).expect("ticket exists");
                    ticket.session = Some(s);
                    ticket.stage = stage;
                    ticket.phase = Phase::AwaitingFeedback(query);
                    self.counters.note_parked(held);
                    drop(st);
                    self.client_cv.notify_all();
                    return;
                }
                SessionState::Done(outcome) => match stage {
                    LinkTarget::Tables => {
                        let mut st = self.state.lock();
                        let ticket = st.tickets.get_mut(&id).expect("ticket exists");
                        ticket.tables = Some(outcome);
                        ticket.stage = LinkTarget::Columns;
                        stage = LinkTarget::Columns;
                        // Session dropped; the next loop iteration
                        // opens the chained columns session.
                    }
                    LinkTarget::Columns => {
                        self.finalize(id, stage, Some(outcome), false);
                        return;
                    }
                },
            }
        }
    }

    fn open_session(
        &self,
        inst: &'a Instance,
        meta: &'a DbMeta,
        stage: LinkTarget,
    ) -> LinkSession<'a> {
        let mbpp = match stage {
            LinkTarget::Tables => self.mbpp_tables,
            LinkTarget::Columns => self.mbpp_columns,
        };
        // The reference-linking knob runs context-free (the session
        // ignores a context under it anyway; skip the cache churn).
        let ctx = (!self.config.rts.reference_linking)
            .then(|| CtxHandle::Shared(self.cache.get(meta, stage)));
        LinkSession::new(
            self.model,
            mbpp,
            inst,
            meta,
            stage,
            ctx,
            None,
            &self.config.rts,
        )
    }

    /// The abstention every shed stage degrades to.
    fn shed_outcome() -> RtsOutcome {
        RtsOutcome {
            abstained: true,
            predicted: Vec::new(),
            correct: false,
            would_be_correct: false,
            n_interventions: 0,
            n_flags: 0,
        }
    }

    /// Retire a ticket: `columns` is the finished column outcome, or
    /// `None` when shedding cut the run short at `stage`.
    fn finalize(&self, id: TicketId, stage: LinkTarget, columns: Option<RtsOutcome>, shed: bool) {
        let mut st = self.state.lock();
        let ticket = st.tickets.get_mut(&id).expect("ticket exists");
        let tables = match ticket.tables.take() {
            Some(t) => t,
            None => {
                debug_assert!(shed && stage == LinkTarget::Tables);
                Self::shed_outcome()
            }
        };
        let columns = columns.unwrap_or_else(Self::shed_outcome);
        let outcome = ServeOutcome {
            outcome: JointOutcome { tables, columns },
            shed,
            latency: ticket.submitted.elapsed(),
            n_feedback: ticket.n_feedback,
        };
        self.latencies_ms
            .lock()
            .push(outcome.latency.as_secs_f64() * 1e3);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if shed {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
        }
        ticket.phase = Phase::Done(outcome);
        drop(st);
        self.client_cv.notify_all();
    }

    /// Counter snapshot (latency percentiles recomputed on each call).
    pub fn stats(&self) -> ServingStats {
        // Copy the samples out under the lock; sort/summarize outside
        // it so workers finalizing requests are never stalled behind a
        // percentile computation.
        let samples = self.latencies_ms.lock().snapshot();
        let latency = LatencySummary::from_samples(&samples);
        ServingStats {
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            feedback_rounds: self.counters.feedback_rounds.load(Ordering::Relaxed),
            latency,
            queue_depth_max: self.counters.depth_max.load(Ordering::Relaxed),
            queue_depth_mean: self.counters.depth_mean(),
            cache: self.cache.stats(),
            parked_bytes_peak: self.counters.parked_bytes_peak.load(Ordering::Relaxed),
            parked_sessions_peak: self.counters.parked_sessions_peak.load(Ordering::Relaxed),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_core::abstention::MitigationPolicy;
    use rts_core::bpp::{MbppConfig, ProbeConfig};
    use rts_core::branching::BranchDataset;
    use rts_core::human::{Expertise, HumanOracle};
    use rts_core::session::resolve_flag;

    struct Fx {
        bench: benchgen::Benchmark,
        model: SchemaLinker,
        mbpp_t: Mbpp,
        mbpp_c: Mbpp,
    }

    fn fixture() -> Fx {
        let bench = benchgen::BenchmarkProfile::bird_like()
            .scaled(0.04)
            .generate(77);
        let model = SchemaLinker::new("bird", 5);
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds_t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 300);
        let ds_c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 300);
        let mbpp_t = Mbpp::train(&ds_t, &cfg);
        let mbpp_c = Mbpp::train(&ds_c, &cfg);
        Fx {
            bench,
            model,
            mbpp_t,
            mbpp_c,
        }
    }

    /// Closed-loop client: submit every instance of `slice`, answering
    /// feedback with the oracle, collecting outcomes by instance id.
    fn client_run<'a>(
        engine: &ServeEngine<'a>,
        instances: &'a [benchgen::Instance],
        oracle: &HumanOracle,
    ) -> Vec<(u64, ServeOutcome)> {
        let policy = MitigationPolicy::Human(oracle);
        let mut out = Vec::new();
        for inst in instances {
            let ticket = loop {
                match engine.submit(inst) {
                    Ok(t) => break t,
                    Err(SubmitError::QueueFull { .. }) => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            };
            loop {
                match engine.wait_event(ticket) {
                    ClientEvent::NeedsFeedback { query, .. } => {
                        engine.resolve(ticket, resolve_flag(&policy, inst, &query));
                    }
                    ClientEvent::Done(outcome) => {
                        out.push((inst.id, outcome));
                        break;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn engine_serves_concurrent_clients_with_feedback() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(40).cloned().collect();
        let config = ServeConfig {
            workers: 3,
            queue_capacity: 4,
            cache_capacity: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let n_clients = 4;
        let chunks: Vec<&[benchgen::Instance]> = instances.chunks(10).collect();
        let results: Vec<Vec<(u64, ServeOutcome)>> = crossbeam::thread::scope(|s| {
            for _ in 0..engine.config().workers {
                s.spawn(|_| engine.worker_loop());
            }
            let handles: Vec<_> = (0..n_clients)
                .map(|c| {
                    let engine = &engine;
                    let chunk = chunks[c];
                    let oracle = &oracle;
                    s.spawn(move |_| client_run(engine, chunk, oracle))
                })
                .collect();
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("client panicked"))
                .collect();
            engine.shutdown();
            results
        })
        .expect("serve scope panicked");

        let all: Vec<(u64, ServeOutcome)> = results.into_iter().flatten().collect();
        assert_eq!(all.len(), instances.len());
        let stats = engine.stats();
        assert_eq!(stats.completed, instances.len() as u64);
        assert_eq!(stats.shed, 0, "no deadline configured");
        assert!(
            stats.feedback_rounds > 0,
            "a human workload must consult at least once"
        );
        assert!(stats.cache.hits > 0, "contexts must be reused");
        // Engine outcomes ≡ the batch runtime, instance by instance.
        let contexts = rts_core::context::LinkContexts::build(&fx.bench);
        let policy = MitigationPolicy::Human(&oracle);
        let mut scratch = LinkScratch::default();
        for (id, served) in &all {
            let inst = instances.iter().find(|i| i.id == *id).unwrap();
            let batch = rts_core::pipeline::run_joint_linking_in(
                &fx.model,
                &fx.mbpp_t,
                &fx.mbpp_c,
                inst,
                &fx.bench,
                &contexts,
                &policy,
                &engine.config().rts,
                &mut scratch,
            );
            assert_eq!(
                format!("{:?}", served.outcome),
                format!("{batch:?}"),
                "instance {id}"
            );
            assert!(!served.shed);
        }
    }

    #[test]
    fn zero_deadline_sheds_to_abstention_not_drops() {
        let fx = fixture();
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(8).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, &instances, &oracle);
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len(), "shedding never drops");
        for (_, o) in &outcomes {
            assert!(o.shed);
            assert!(o.outcome.abstained(), "shed degrades to abstention");
        }
        let stats = engine.stats();
        assert_eq!(stats.shed, instances.len() as u64);
        assert_eq!(
            stats.cache.misses, 0,
            "an instantly-shed request never builds a context"
        );
    }

    #[test]
    fn bounded_admission_rejects_when_full() {
        let fx = fixture();
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        // No workers running: the queue only fills.
        let a = engine.submit(&fx.bench.split.dev[0]);
        let b = engine.submit(&fx.bench.split.dev[1]);
        let c = engine.submit(&fx.bench.split.dev[2]);
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(c, Err(SubmitError::QueueFull { capacity: 2 }));
        assert_eq!(engine.stats().rejected, 1);
        assert_eq!(engine.stats().queue_depth_max, 2);
    }
}

//! The worker-pool engine driving concurrent resumable linking
//! sessions. See the crate docs for the design overview.

use crate::checkpoint;
use crate::error::{ResolveError, SubmitError};
use crate::fault::{FaultPlan, FaultSite, InjectedPanic};
use crate::stats::{Counters, LatencySummary, LatencyWindow, ServingStats};
use crate::tenant::{FairQueue, TenantId, TenantQuota, TicketId};
use benchgen::schemagen::DbMeta;
use benchgen::Instance;
use parking_lot::{Condvar, Mutex};
use rts_core::abstention::{LinkScratch, RtsConfig, RtsOutcome};
use rts_core::bpp::Mbpp;
use rts_core::context::ContextCache;
use rts_core::pipeline::JointOutcome;
use rts_core::session::{
    CtxHandle, FlagQuery, FlagResolution, Handle, LinkSession, SessionCheckpoint, SessionState,
};
use simlm::{LinkTarget, SchemaLinker};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads the caller should spawn on
    /// [`ServeEngine::worker_loop`] (the engine itself never spawns —
    /// scoped threads keep every borrow checked).
    pub workers: usize,
    /// Admission-queue bound across all tenants; submits beyond it are
    /// rejected ([`SubmitError::QueueFull`]). `0` = unbounded. Resumed
    /// sessions never count against admission — they were already
    /// admitted.
    pub queue_capacity: usize,
    /// Per-tenant admission quota (max in-flight / max parked;
    /// `0` = unbounded). Submissions beyond it are rejected with
    /// [`SubmitError::QuotaExceeded`], so backpressure lands on the
    /// tenant generating the load instead of on everyone.
    pub quota: TenantQuota,
    /// Per-request latency budget. A request past it is *shed*: its
    /// remaining linking stages degrade to abstention (the answer is
    /// "hand off to a human", never a dropped connection). `None`
    /// disables shedding.
    pub deadline: Option<Duration>,
    /// How long a session may stay parked on one feedback query. Past
    /// it the flag is resolved as [`FlagResolution::Abstain`] — the
    /// paper's own hand-off verdict — and the request completes
    /// (degrade, never drop; same philosophy as deadline shedding).
    /// `None` = park forever.
    pub feedback_timeout: Option<Duration>,
    /// Budget for live generation state held by parked sessions. Past
    /// it the engine serializes the largest parked sessions through the
    /// serde shim (dropping their hidden-state stacks) and restores
    /// them bit-identically when feedback arrives. `0` = never
    /// checkpoint.
    pub parked_bytes_budget: usize,
    /// Context-cache capacity per link target (databases); `0` =
    /// unbounded.
    pub cache_capacity: usize,
    /// Deterministic fault-injection schedule (see [`crate::fault`]).
    /// Disabled by default — one predictable branch per site.
    pub fault: FaultPlan,
    /// How many times a panicked step is rebuilt from its salvage
    /// checkpoint and retried before the ticket degrades to a
    /// `faulted` abstention.
    pub step_retry_budget: usize,
    /// Base backoff before a step retry; doubles per consecutive panic
    /// of the same ticket. `ZERO` retries immediately.
    pub step_retry_backoff: Duration,
    /// Runtime knobs threaded into every session (seed, reference
    /// paths, …).
    pub rts: RtsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: rts_core::par::thread_count(),
            queue_capacity: 64,
            quota: TenantQuota::default(),
            deadline: None,
            feedback_timeout: None,
            parked_bytes_budget: 0,
            cache_capacity: 0,
            fault: FaultPlan::disabled(),
            step_retry_budget: 2,
            step_retry_backoff: Duration::from_micros(100),
            rts: RtsConfig::default(),
        }
    }
}

/// A finished request.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Joint table+column linking outcome — abstained stages included
    /// (whether decided by the runtime, deadline shedding, or a
    /// feedback timeout).
    pub outcome: JointOutcome,
    /// Did deadline shedding degrade any stage to abstention?
    pub shed: bool,
    /// Did a feedback timeout resolve any of this request's flags to
    /// abstention?
    pub timed_out: bool,
    /// Did an unrecoverable fault (a step panicking past the retry
    /// budget, an unsalvageable checkpoint) degrade this request to
    /// abstention? Successfully *recovered* faults leave the outcome
    /// byte-identical to a fault-free run and do not set this.
    pub faulted: bool,
    /// Did a shutdown drain resolve a pending flag of this request to
    /// abstention (nothing would ever answer it)?
    pub drained: bool,
    /// Submit-to-completion wall time.
    pub latency: Duration,
    /// Feedback resolutions this request consumed (client answers only
    /// — timeout resolutions are counted in the engine stats instead).
    pub n_feedback: usize,
}

/// What [`ServeEngine::wait_event`] delivers to a client.
#[derive(Debug, Clone)]
pub enum ClientEvent {
    /// The request is suspended on a branching flag of `target`
    /// linking; answer through [`ServeEngine::resolve`].
    NeedsFeedback {
        target: LinkTarget,
        query: FlagQuery,
    },
    /// The request finished; the ticket is now invalid.
    Done(ServeOutcome),
    /// The ticket no longer exists — its outcome was already collected
    /// (a previous `wait_event` returned [`ClientEvent::Done`]) or it
    /// was never issued. Polling a dead ticket used to panic; a typed
    /// event keeps client bugs out of the engine.
    Retired,
}

/// Request lifecycle. `Running` exists so a worker can own the session
/// outside the state lock while clients still see a coherent phase.
#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    AwaitingFeedback(FlagQuery),
    Done(ServeOutcome),
}

#[derive(Debug)]
struct Ticket {
    tenant: TenantId,
    inst: Arc<Instance>,
    submitted: Instant,
    deadline: Option<Instant>,
    /// When a parked session times out into abstention (`None` while
    /// not parked or with timeouts disabled).
    park_deadline: Option<Instant>,
    /// Stage currently being linked (tables first, then columns —
    /// mirroring `run_joint_linking_in`'s joint process).
    stage: LinkTarget,
    session: Option<LinkSession<'static>>,
    /// Serialized session state when the parked-bytes budget evicted
    /// the live session (mutually exclusive with `session`).
    checkpoint: Option<Vec<u8>>,
    /// A resolution that arrived while the session was checkpointed;
    /// the worker applies it after restoring.
    pending_resolution: Option<FlagResolution>,
    /// Salvage recipe: the checkpoint captured at the last park. If a
    /// later step *panics* (losing the live session), the worker
    /// rebuilds from this — generation is deterministic, so the retry
    /// is bit-identical. A few hundred bytes per parked ticket.
    salvage: Option<SessionCheckpoint>,
    /// The resolution applied to the live session at unpark, kept so a
    /// salvage rebuild can re-apply it (the salvage checkpoint predates
    /// it).
    salvage_resolution: Option<FlagResolution>,
    /// Live parked bytes billed for this ticket (0 once checkpointed).
    parked_billed: usize,
    tables: Option<RtsOutcome>,
    n_feedback: usize,
    timed_out: bool,
    /// Set when a shutdown drain resolved a pending flag of this ticket
    /// to abstention.
    drained: bool,
    phase: Phase,
}

#[derive(Debug)]
struct EngineState {
    /// Per-tenant sub-queues with deficit-round-robin dispatch;
    /// resumed sessions drain before admissions so feedback-ready work
    /// never starves behind fresh arrivals.
    queues: FairQueue,
    tickets: HashMap<TicketId, Ticket>,
    next_id: TicketId,
    /// Lower bound on the earliest parked-feedback deadline (`None` =
    /// no parked deadline). Tightened on every park, recomputed exactly
    /// by the expiry sweep; may be stale-early after an unpark, which
    /// only costs one harmless extra sweep — and spares every dispatch
    /// the O(tickets) scan while nothing can have lapsed.
    next_timeout: Option<Instant>,
}

/// The serving engine. Owns its model artefacts behind [`Arc`]s (so
/// shards, servers, and detached worker threads can share one trained
/// set without any scoped borrow); sessions, queues and caches live
/// inside. Share it by reference across scoped worker + client
/// threads, or behind an `Arc` across detached ones.
pub struct ServeEngine {
    model: Arc<SchemaLinker>,
    mbpp_tables: Arc<Mbpp>,
    mbpp_columns: Arc<Mbpp>,
    metas: HashMap<String, Arc<DbMeta>>,
    cache: ContextCache,
    config: ServeConfig,
    state: Mutex<EngineState>,
    /// Wakes workers (new/resumed work, shutdown).
    work_cv: Condvar,
    /// Wakes clients (ticket phase transitions).
    client_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    completed: AtomicU64,
    /// Bounded: percentiles are computed over the most recent
    /// [`LATENCY_WINDOW`] completions, and memory stays O(1) however
    /// long the engine lives.
    latencies_ms: Mutex<LatencyWindow>,
}

/// Completed-request latency samples retained for percentile
/// reporting (a sliding window, oldest overwritten first).
const LATENCY_WINDOW: usize = 1 << 16;

impl ServeEngine {
    /// Build an engine over trained artefacts and the databases in
    /// `metas`, cloning each into shared ownership. No contexts are
    /// compiled here — they materialize lazily, per database, on first
    /// request. To share one trained set across several engines (a
    /// sharded fleet), clone the `Arc`s and use
    /// [`ServeEngine::with_artifacts`] instead.
    pub fn new(
        model: &SchemaLinker,
        mbpp_tables: &Mbpp,
        mbpp_columns: &Mbpp,
        metas: &[DbMeta],
        config: ServeConfig,
    ) -> Self {
        Self::with_artifacts(
            Arc::new(model.clone()),
            Arc::new(mbpp_tables.clone()),
            Arc::new(mbpp_columns.clone()),
            metas.iter().map(|m| Arc::new(m.clone())).collect(),
            config,
        )
    }

    /// Build an engine over already-shared artefacts — the zero-copy
    /// constructor a sharded fleet or a standalone server uses so every
    /// engine points at the same trained weights.
    pub fn with_artifacts(
        model: Arc<SchemaLinker>,
        mbpp_tables: Arc<Mbpp>,
        mbpp_columns: Arc<Mbpp>,
        metas: Vec<Arc<DbMeta>>,
        config: ServeConfig,
    ) -> Self {
        Self {
            model,
            mbpp_tables,
            mbpp_columns,
            metas: metas.into_iter().map(|m| (m.name.clone(), m)).collect(),
            cache: ContextCache::new(config.cache_capacity),
            config,
            state: Mutex::new(EngineState {
                queues: FairQueue::new(1),
                tickets: HashMap::new(),
                next_id: 0,
                next_timeout: None,
            }),
            work_cv: Condvar::new(),
            client_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            completed: AtomicU64::new(0),
            latencies_ms: Mutex::new(LatencyWindow::new(LATENCY_WINDOW)),
        }
    }

    fn meta_of(&self, inst: &Instance) -> Option<Arc<DbMeta>> {
        self.metas.get(inst.db_name.as_str()).cloned()
    }

    /// Override a tenant's fair-share weight (default 1): a tenant with
    /// weight `w` is dispatched `w` admissions per scheduling cycle.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        self.state.lock().queues.set_weight(tenant, weight);
    }

    /// Signal schema drift for `db`: drop its cached `LinkContext`s so
    /// *new* sessions rebuild against the current metadata. Sessions
    /// already in flight finish on their pinned `Arc<LinkContext>` —
    /// invalidation never changes what a running request holds.
    /// Returns the number of cached contexts dropped.
    pub fn invalidate_db(&self, db: &str) -> usize {
        self.counters
            .db_invalidations
            .fetch_add(1, Ordering::Relaxed);
        self.cache.invalidate_db(db)
    }

    /// Admit a request by `tenant` for joint (tables → columns) linking
    /// of `inst` (cloned into the ticket — the engine owns everything a
    /// parked session may need past the caller's scope). Per-tenant
    /// quotas are checked before the global queue bound, so an
    /// over-quota tenant sees its own error, not everyone's.
    pub fn submit(&self, tenant: TenantId, inst: &Instance) -> Result<TicketId, SubmitError> {
        // Fail fast on unknown databases, before any queue state
        // changes — a typed rejection, never a worker panic later.
        if self.meta_of(inst).is_none() {
            return Err(SubmitError::UnknownDatabase {
                database: inst.db_name.clone(),
            });
        }
        let now = Instant::now();
        let mut st = self.state.lock();
        let quota = self.config.quota;
        let load = st.queues.load(tenant);
        if quota.max_in_flight > 0 && load.in_flight >= quota.max_in_flight {
            self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QuotaExceeded {
                tenant,
                limit: quota.max_in_flight,
            });
        }
        if quota.max_parked > 0 && load.parked >= quota.max_parked {
            self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QuotaExceeded {
                tenant,
                limit: quota.max_parked,
            });
        }
        if self.config.queue_capacity > 0 && st.queues.n_admission() >= self.config.queue_capacity {
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.tickets.insert(
            id,
            Ticket {
                tenant,
                inst: Arc::new(inst.clone()),
                submitted: now,
                deadline: self.config.deadline.map(|d| now + d),
                park_deadline: None,
                stage: LinkTarget::Tables,
                session: None,
                checkpoint: None,
                pending_resolution: None,
                salvage: None,
                salvage_resolution: None,
                parked_billed: 0,
                tables: None,
                n_feedback: 0,
                timed_out: false,
                drained: false,
                phase: Phase::Queued,
            },
        );
        st.queues.push_admission(tenant, id);
        st.queues.note_admitted(tenant);
        self.counters.note_depth(st.queues.queued_len());
        drop(st);
        self.work_cv.notify_one();
        Ok(id)
    }

    /// Block until the ticket suspends on feedback or completes. On
    /// [`ClientEvent::Done`] the ticket is retired — a later call for
    /// the same id returns [`ClientEvent::Retired`], as does an id
    /// that was never issued. Re-polling a suspended ticket returns
    /// the same query; the protocol is
    /// `submit → (wait_event → resolve)* → Done`.
    pub fn wait_event(&self, id: TicketId) -> ClientEvent {
        let mut st = self.state.lock();
        loop {
            let Some(ticket) = st.tickets.get(&id) else {
                return ClientEvent::Retired;
            };
            match &ticket.phase {
                Phase::AwaitingFeedback(query) => {
                    return ClientEvent::NeedsFeedback {
                        target: ticket.stage,
                        query: query.clone(),
                    };
                }
                Phase::Done(_) => {
                    return match st.tickets.remove(&id).map(|t| t.phase) {
                        Some(Phase::Done(outcome)) => ClientEvent::Done(outcome),
                        // Unreachable under the lock held since the
                        // check above — but a client API degrades, it
                        // never panics.
                        _ => ClientEvent::Retired,
                    };
                }
                Phase::Queued | Phase::Running => self.client_cv.wait(&mut st),
            }
        }
    }

    /// Edge-triggered [`ServeEngine::wait_event`]: block until the
    /// ticket's state *differs* from `last_seen` — the query the caller
    /// already has in hand (or `None` when it has seen nothing yet).
    /// A level-triggered poll loop over `wait_event` spins while a
    /// known flag stays unanswered; a connection handler pushing events
    /// to a remote client needs "wake me on the *next* transition"
    /// instead. Round numbers make successive queries of one ticket
    /// distinct, so equality on the query is a correct edge detector.
    pub fn wait_event_changed(&self, id: TicketId, last_seen: Option<&FlagQuery>) -> ClientEvent {
        let mut st = self.state.lock();
        loop {
            let Some(ticket) = st.tickets.get(&id) else {
                return ClientEvent::Retired;
            };
            match &ticket.phase {
                Phase::AwaitingFeedback(query) if Some(query) != last_seen => {
                    return ClientEvent::NeedsFeedback {
                        target: ticket.stage,
                        query: query.clone(),
                    };
                }
                Phase::Done(_) => {
                    return match st.tickets.remove(&id).map(|t| t.phase) {
                        Some(Phase::Done(outcome)) => ClientEvent::Done(outcome),
                        // Unreachable under the lock held since the
                        // check above — but a client API degrades, it
                        // never panics.
                        _ => ClientEvent::Retired,
                    };
                }
                _ => self.client_cv.wait(&mut st),
            }
        }
    }

    /// Apply feedback to a suspended ticket and re-queue it. `query` is
    /// the [`FlagQuery`] the client is answering (from its last
    /// [`ClientEvent::NeedsFeedback`]) — the flag's identity, so a
    /// stale answer can never land on a different flag. Resumed work
    /// bypasses admission bounds — it was already admitted.
    ///
    /// `Err(ResolveError::Stale)` means the resolution lost a race:
    /// the flag was already answered (a feedback timeout, a duplicate
    /// resolve) or — with a chained stage in between — the ticket is
    /// now suspended on a *different* flag than the one the client
    /// saw. `Err(ResolveError::Retired)` means the ticket is gone.
    /// Either way the answer is dropped, never misapplied — and a
    /// protocol race is a typed error, never a panic.
    pub fn resolve(
        &self,
        id: TicketId,
        query: &FlagQuery,
        resolution: FlagResolution,
    ) -> Result<(), ResolveError> {
        if self.config.fault.trip(FaultSite::FeedbackDelay) {
            // A slow network between client and engine: the resolution
            // arrives late, exercising the stale-answer races (taken
            // before the state lock — a delay must not stall workers).
            self.counters
                .feedback_delayed
                .fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.config.fault.feedback_delay);
        }
        if self.config.feedback_timeout.is_some() && self.config.fault.trip(FaultSite::FeedbackLoss)
        {
            // Lost in flight *after* the client sent it — from the
            // client's view the resolve succeeded; the park timeout
            // completes the request as an abstention hand-off. Only
            // injected when a timeout exists to rescue the park.
            self.counters.feedback_lost.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        let mut st = self.state.lock();
        let Some(ticket) = st.tickets.get_mut(&id) else {
            return Err(ResolveError::Retired);
        };
        match &ticket.phase {
            Phase::AwaitingFeedback(current) if current == query => {}
            _ => return Err(ResolveError::Stale),
        }
        ticket.n_feedback += 1;
        self.unpark(&mut st, id, resolution);
        self.counters
            .feedback_rounds
            .fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.work_cv.notify_one();
        Ok(())
    }

    /// The one unpark protocol, shared by client resolutions and
    /// feedback-timeout expiry: release the parked billing, apply the
    /// resolution to the live session (or stash it for the worker to
    /// apply after restoring a checkpointed one), and re-queue the
    /// ticket on its tenant's resume lane. Callers bill their own
    /// counters (`feedback_rounds` vs `timed_out`) around it.
    fn unpark(&self, st: &mut EngineState, id: TicketId, resolution: FlagResolution) {
        let Some(ticket) = st.tickets.get_mut(&id) else {
            // Unparking an id with no ticket is an accounting bug;
            // absorb it (nothing to resume) rather than panic a worker
            // or a client thread.
            debug_assert!(false, "unparked ticket exists");
            self.counters.note_breach();
            return;
        };
        self.counters.note_unparked(ticket.parked_billed);
        ticket.parked_billed = 0;
        ticket.park_deadline = None;
        match ticket.session.as_mut() {
            Some(session) => {
                // Remember what was applied: if a later step panics,
                // the salvage checkpoint (captured *before* this
                // resolution) plus this replay rebuilds the session.
                ticket.salvage_resolution = Some(resolution.clone());
                session.resolve(resolution);
            }
            // Checkpointed while parked: the worker restores the
            // session and applies this resolution before stepping.
            None => ticket.pending_resolution = Some(resolution),
        }
        ticket.phase = Phase::Queued;
        let tenant = ticket.tenant;
        st.queues.push_resume(tenant, id);
        st.queues.note_unparked(tenant);
    }

    /// Ask workers to exit once the queues drain. In-queue tickets are
    /// still processed, and *parked* tickets are drained: nothing will
    /// answer their flags anymore, so workers resolve each one with
    /// the abstention verdict (`drained_to_abstention` in the stats)
    /// and run it to completion — every submitted ticket ends
    /// [`ClientEvent::Done`], memory gauges drain to zero, and a
    /// client still polling collects its outcome.
    pub fn shutdown(&self) {
        // Flip the flag *under the state lock*: a worker that just saw
        // `shutdown == false` while holding the lock is guaranteed to
        // reach `work_cv.wait` (atomically releasing it) before this
        // store can happen, so the notify below always lands. Storing
        // outside the lock could slot the store+notify between a
        // worker's check and its wait — a lost wakeup that parks the
        // worker forever.
        let st = self.state.lock();
        self.shutdown.store(true, Ordering::SeqCst);
        drop(st);
        self.work_cv.notify_all();
    }

    /// Resolve every parked ticket whose feedback deadline lapsed with
    /// the abstention verdict and re-queue it. Called by workers on
    /// every dispatch, so timeouts fire as soon as a worker is free to
    /// act on them. O(1) while nothing can have lapsed (the cached
    /// `next_timeout` bound); the full ticket scan runs only when a
    /// deadline actually passed, and re-tightens the bound.
    fn expire_lapsed_parks(&self, st: &mut EngineState) {
        if self.config.feedback_timeout.is_none() {
            return;
        }
        let now = Instant::now();
        match st.next_timeout {
            None => return,
            Some(bound) if now < bound => return,
            Some(_) => {}
        }
        let lapsed: Vec<TicketId> = st
            .tickets
            .iter()
            .filter(|(_, t)| {
                matches!(t.phase, Phase::AwaitingFeedback(_))
                    && t.park_deadline.is_some_and(|d| now >= d)
            })
            .map(|(&id, _)| id)
            .collect();
        st.next_timeout = st
            .tickets
            .values()
            .filter(|t| matches!(t.phase, Phase::AwaitingFeedback(_)))
            .filter_map(|t| t.park_deadline)
            .filter(|&d| d > now)
            .min();
        for id in lapsed {
            // Collected from the same map under the same lock, so the
            // entry must still be there; degrade if it is not.
            let Some(ticket) = st.tickets.get_mut(&id) else {
                debug_assert!(false, "lapsed ticket exists");
                self.counters.note_breach();
                continue;
            };
            ticket.timed_out = true;
            // The timeout is billed as an unconsulted abstention: no
            // human was reached, the stage degrades to the hand-off
            // verdict (never drop).
            self.unpark(st, id, FlagResolution::Abstain { consulted: false });
            self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shutdown drain: resolve every parked ticket with the abstention
    /// verdict and re-queue it so the pool runs it to completion before
    /// exiting. Workers call this on every dispatch once the shutdown
    /// flag is up; `process` stops parking new flags at the same point,
    /// so no ticket can strand between the last sweep and worker exit.
    fn drain_parked_for_shutdown(&self, st: &mut EngineState) {
        let parked: Vec<TicketId> = st
            .tickets
            .iter()
            .filter(|(_, t)| matches!(t.phase, Phase::AwaitingFeedback(_)))
            .map(|(&id, _)| id)
            .collect();
        for id in parked {
            let Some(ticket) = st.tickets.get_mut(&id) else {
                debug_assert!(false, "parked ticket exists");
                self.counters.note_breach();
                continue;
            };
            ticket.drained = true;
            self.unpark(st, id, FlagResolution::Abstain { consulted: false });
            self.counters
                .drained_to_abstention
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Earliest possible parked-feedback deadline, bounding how long an
    /// idle worker may sleep. The cached bound may be stale-early after
    /// an unpark — the woken worker just sweeps, finds nothing, and
    /// sleeps again with a corrected bound.
    fn next_park_deadline(&self, st: &EngineState) -> Option<Instant> {
        self.config.feedback_timeout?;
        st.next_timeout
    }

    /// The worker body: spawn `config.workers` scoped threads on this.
    /// Returns when [`ServeEngine::shutdown`] is called and no queued
    /// work remains.
    pub fn worker_loop(&self) {
        let mut scratch = LinkScratch::default();
        loop {
            let id = {
                let mut st = self.state.lock();
                loop {
                    self.expire_lapsed_parks(&mut st);
                    if self.shutdown.load(Ordering::SeqCst) {
                        // Degrade-only shutdown: requeue parked tickets
                        // with the abstention verdict so they complete
                        // (and are popped below) before workers exit.
                        self.drain_parked_for_shutdown(&mut st);
                    }
                    if let Some(id) = st.queues.pop() {
                        break id;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match self.next_park_deadline(&st) {
                        // Sleep only until the next timeout can fire; a
                        // stalled tenant must not park forever just
                        // because no new work arrives to wake us.
                        Some(deadline) => {
                            let wait = deadline.saturating_duration_since(Instant::now());
                            let _ = self.work_cv.wait_for(&mut st, wait);
                        }
                        None => self.work_cv.wait(&mut st),
                    }
                }
            };
            self.process(id, &mut scratch);
        }
    }

    /// Non-blocking single dispatch: run the timeout/shutdown sweeps,
    /// pop one ready ticket if there is one, and process it. Returns
    /// whether a ticket was processed. This is the building block a
    /// sharded pool's workers use to serve their home shard and steal
    /// from neighbours without committing to any engine's blocking
    /// [`ServeEngine::worker_loop`].
    pub fn try_process_one(&self, scratch: &mut LinkScratch) -> bool {
        let id = {
            let mut st = self.state.lock();
            self.expire_lapsed_parks(&mut st);
            if self.shutdown.load(Ordering::SeqCst) {
                self.drain_parked_for_shutdown(&mut st);
            }
            st.queues.pop()
        };
        match id {
            Some(id) => {
                self.process(id, scratch);
                true
            }
            None => false,
        }
    }

    /// Park the calling worker until work may be available on this
    /// engine, bounded by `timeout` and by the next parked-feedback
    /// deadline. Returns immediately when work is already queued or
    /// shutdown was requested. A work-stealing worker sleeps here on
    /// its *home* shard between scans — the bound keeps it rescanning
    /// neighbours it holds no condvar on.
    pub fn wait_for_work(&self, timeout: Duration) {
        let mut st = self.state.lock();
        if st.queues.queued_len() > 0 || self.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let bound = match self.next_park_deadline(&st) {
            Some(deadline) => deadline
                .saturating_duration_since(Instant::now())
                .min(timeout),
            None => timeout,
        };
        let _ = self.work_cv.wait_for(&mut st, bound);
    }

    /// Whether [`ServeEngine::shutdown`] has been requested.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Raw completed-request latency samples (the bounded window) —
    /// what a sharded aggregate recomputes fleet percentiles from.
    pub(crate) fn latency_samples_ms(&self) -> Vec<f64> {
        self.latencies_ms.lock().snapshot()
    }

    /// Run one ticket forward until it parks on feedback, finishes,
    /// sheds on its deadline, or degrades to abstention after an
    /// unrecoverable fault.
    fn process(&self, id: TicketId, scratch: &mut LinkScratch) {
        let (
            inst,
            tenant,
            mut stage,
            mut session,
            mut checkpointed,
            mut resolution,
            deadline,
            mut salvage,
            mut salvage_resolution,
        ) = {
            let mut st = self.state.lock();
            let Some(ticket) = st.tickets.get_mut(&id) else {
                // A dispatched id with no ticket record is an
                // accounting bug; drop the dispatch, keep the worker.
                debug_assert!(false, "dispatched ticket exists");
                self.counters.note_breach();
                return;
            };
            ticket.phase = Phase::Running;
            (
                ticket.inst.clone(),
                ticket.tenant,
                ticket.stage,
                ticket.session.take(),
                ticket.checkpoint.take(),
                ticket.pending_resolution.take(),
                ticket.deadline,
                ticket.salvage.take(),
                ticket.salvage_resolution.take(),
            )
        };
        let Some(meta) = self.meta_of(&inst) else {
            // `submit` rejects unknown databases, so this cannot happen
            // through the public API — but an engine bug must degrade
            // the one ticket, not panic the worker pool.
            self.finalize(id, tenant, stage, None, false, true);
            return;
        };
        loop {
            // Abstention-as-backpressure: past the budget, the
            // remaining stages answer with the paper's own hand-off
            // verdict instead of dropping the request.
            if deadline.is_some_and(|d| Instant::now() > d) {
                if let Some(bytes) = checkpointed.take() {
                    // The shed ticket's checkpoint is never restored —
                    // return its bytes to the accounting or the gauge
                    // would read non-zero forever.
                    self.counters.note_checkpoint_discarded(bytes.len());
                }
                self.finalize(id, tenant, stage, None, true, false);
                return;
            }
            // Build the session, remembering the recipe that rebuilds
            // it should a step panic: the pre-resolution checkpoint
            // plus the resolution to replay. `None` = the session was
            // freshly opened and rebuilds from scratch.
            let (mut s, recovery): (
                LinkSession<'static>,
                Option<(SessionCheckpoint, Option<FlagResolution>)>,
            ) = match session.take() {
                Some(s) => (s, salvage.take().map(|cp| (cp, salvage_resolution.take()))),
                None => match checkpointed.take() {
                    Some(bytes) => {
                        let decoded = if self.config.fault.trip(FaultSite::CheckpointDecode) {
                            None
                        } else {
                            // A decoded checkpoint must belong to this
                            // (instance, stage) AND to the model's
                            // synthesis corpus — restore re-synthesizes
                            // the round, so a cross-corpus checkpoint
                            // would rebuild different hidden states.
                            // Mismatches fall through to the salvage
                            // recipe (degrade, never panic).
                            checkpoint::try_decode(&bytes).ok().filter(|cp| {
                                cp.matches(&inst, stage) && cp.corpus == self.model.corpus()
                            })
                        };
                        // The bytes leave the gauge either way — they
                        // are consumed here, restorable or not.
                        self.counters.note_restored(bytes.len());
                        let cp = match decoded {
                            Some(cp) => cp,
                            // Corrupt checkpoint: the salvage copy kept
                            // in memory at park time re-runs the same
                            // regeneration recipe bit-identically.
                            None => match salvage.take() {
                                Some(cp) => {
                                    self.counters
                                        .corrupt_checkpoints_recovered
                                        .fetch_add(1, Ordering::Relaxed);
                                    cp
                                }
                                None => {
                                    self.finalize(id, tenant, stage, None, false, true);
                                    return;
                                }
                            },
                        };
                        let res = resolution.take();
                        let s = self.rebuild_session(&inst, &meta, stage, &cp, &res, scratch);
                        (s, Some((cp, res)))
                    }
                    None => (self.open_session(&inst, &meta, stage), None),
                },
            };
            // Step under `catch_unwind`: a panicking step (injected or
            // genuine) must cost at most this ticket, never the worker
            // pool. The session is rebuilt from its recovery recipe and
            // retried with exponential backoff; past the budget the
            // ticket degrades to a `faulted` abstention.
            let mut panics = 0usize;
            let state = loop {
                let inject = self.config.fault.trip(FaultSite::StepPanic);
                let stepped = catch_unwind(AssertUnwindSafe(|| {
                    if inject {
                        // rts-allow(panic): deterministic fault
                        // injection — this panic exists to exercise
                        // the catch_unwind recovery path right below.
                        std::panic::panic_any(InjectedPanic);
                    }
                    s.step(scratch)
                }));
                match stepped {
                    Ok(state) => break Some(state),
                    Err(_) => {
                        self.counters
                            .panics_recovered
                            .fetch_add(1, Ordering::Relaxed);
                        panics += 1;
                        if panics > self.config.step_retry_budget {
                            break None;
                        }
                        // The unwound step may have left the scratch
                        // buffers mid-mutation; start clean.
                        *scratch = LinkScratch::default();
                        let backoff =
                            self.config.step_retry_backoff * (1u32 << (panics - 1).min(16));
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        s = match &recovery {
                            Some((cp, res)) => {
                                self.rebuild_session(&inst, &meta, stage, cp, res, scratch)
                            }
                            None => self.open_session(&inst, &meta, stage),
                        };
                    }
                }
            };
            let Some(state) = state else {
                self.counters
                    .panics_to_abstention
                    .fetch_add(1, Ordering::Relaxed);
                self.finalize(id, tenant, stage, None, false, true);
                return;
            };
            match state {
                SessionState::NeedsFeedback(query) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        // Shutting down: nothing will answer this flag.
                        // Resolve it to abstention right here instead
                        // of parking — parking after the drain sweep
                        // would strand the ticket forever.
                        let cp = s.checkpoint();
                        let verdict = FlagResolution::Abstain { consulted: false };
                        s.resolve(verdict.clone());
                        {
                            let mut st = self.state.lock();
                            if let Some(ticket) = st.tickets.get_mut(&id) {
                                ticket.drained = true;
                            } else {
                                debug_assert!(false, "running ticket exists");
                                self.counters.note_breach();
                            }
                        }
                        self.counters
                            .drained_to_abstention
                            .fetch_add(1, Ordering::Relaxed);
                        session = Some(s);
                        salvage = Some(cp);
                        salvage_resolution = Some(verdict);
                        let _ = query;
                        continue;
                    }
                    let held = s.held_bytes();
                    // The salvage recipe: cheap (recipe-sized, no
                    // hidden stacks), and the only way back should a
                    // post-resolution step panic lose the session.
                    let cp = s.checkpoint();
                    let park_deadline = self.config.feedback_timeout.map(|t| Instant::now() + t);
                    let mut st = self.state.lock();
                    if let Some(deadline) = park_deadline {
                        st.next_timeout = Some(match st.next_timeout {
                            Some(cur) => cur.min(deadline),
                            None => deadline,
                        });
                    }
                    let Some(ticket) = st.tickets.get_mut(&id) else {
                        // No ticket to park the session on: absorb the
                        // accounting bug and drop this request's state
                        // instead of poisoning the worker pool.
                        debug_assert!(false, "running ticket exists");
                        self.counters.note_breach();
                        return;
                    };
                    ticket.session = Some(s);
                    ticket.stage = stage;
                    ticket.salvage = Some(cp);
                    ticket.salvage_resolution = None;
                    ticket.parked_billed = held;
                    ticket.park_deadline = park_deadline;
                    ticket.phase = Phase::AwaitingFeedback(query);
                    st.queues.note_parked(tenant);
                    self.counters.note_parked(held);
                    self.enforce_parked_budget(&mut st);
                    drop(st);
                    self.client_cv.notify_all();
                    // A parked deadline may now be the earliest wake-up:
                    // make sure some idle worker re-arms its sleep.
                    if self.config.feedback_timeout.is_some() {
                        self.work_cv.notify_one();
                    }
                    return;
                }
                SessionState::Done(outcome) => match stage {
                    LinkTarget::Tables => {
                        let mut st = self.state.lock();
                        let Some(ticket) = st.tickets.get_mut(&id) else {
                            debug_assert!(false, "running ticket exists");
                            self.counters.note_breach();
                            return;
                        };
                        ticket.tables = Some(outcome);
                        ticket.stage = LinkTarget::Columns;
                        stage = LinkTarget::Columns;
                        // Session dropped; the next loop iteration
                        // opens the chained columns session. The tables
                        // salvage is stage-local — clear it.
                        salvage = None;
                        salvage_resolution = None;
                    }
                    LinkTarget::Columns => {
                        self.finalize(id, tenant, stage, Some(outcome), false, false);
                        return;
                    }
                },
            }
        }
    }

    /// Evict live parked sessions (largest first) into serialized
    /// checkpoints until the parked-bytes budget holds. Serialization
    /// is cheap — the checkpoint stores the regeneration recipe, not
    /// the hidden stacks — so running under the state lock is fine;
    /// the expensive re-synthesis happens on the worker that resumes
    /// the ticket.
    fn enforce_parked_budget(&self, st: &mut EngineState) {
        let budget = self.config.parked_bytes_budget;
        if budget == 0 {
            return;
        }
        while self.counters.parked_bytes.load(Ordering::Relaxed) > budget {
            let victim = st
                .tickets
                .iter()
                .filter(|(_, t)| {
                    matches!(t.phase, Phase::AwaitingFeedback(_)) && t.session.is_some()
                })
                .max_by_key(|(_, t)| t.parked_billed)
                .map(|(&id, _)| id);
            let Some(vid) = victim else { break };
            // The victim was selected from this map under this lock;
            // a miss here is an accounting bug — stop evicting (the
            // budget check loops on a counter, so continuing could
            // spin) and record the breach.
            let Some(ticket) = st.tickets.get_mut(&vid) else {
                debug_assert!(false, "victim exists");
                self.counters.note_breach();
                break;
            };
            let Some(session) = ticket.session.take() else {
                debug_assert!(false, "victim has a live session");
                self.counters.note_breach();
                break;
            };
            let bytes = checkpoint::encode(&session.checkpoint());
            self.counters
                .note_checkpointed(ticket.parked_billed, bytes.len());
            ticket.parked_billed = 0;
            ticket.checkpoint = Some(bytes);
            // `session` drops here — its hidden stacks are freed.
        }
    }

    fn session_ctx(&self, meta: &DbMeta, stage: LinkTarget) -> Option<CtxHandle<'static>> {
        // The reference-linking knob runs context-free (the session
        // ignores a context under it anyway; skip the cache churn).
        if self.config.rts.reference_linking {
            return None;
        }
        if self.config.fault.trip(FaultSite::ContextBuild) {
            // A failed context build degrades to the context-free
            // reference path — outcome-identical (pinned by the
            // cached≡reference parity proptests), just slower. Never
            // an abstention, never a drop.
            self.counters
                .context_build_fallbacks
                .fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(CtxHandle::Shared(self.cache.get(meta, stage)))
    }

    fn open_session(
        &self,
        inst: &Arc<Instance>,
        meta: &Arc<DbMeta>,
        stage: LinkTarget,
    ) -> LinkSession<'static> {
        let mbpp = match stage {
            LinkTarget::Tables => &self.mbpp_tables,
            LinkTarget::Columns => &self.mbpp_columns,
        };
        LinkSession::new_in(
            Handle::Shared(self.model.clone()),
            Handle::Shared(mbpp.clone()),
            Handle::Shared(inst.clone()),
            Handle::Shared(meta.clone()),
            stage,
            self.session_ctx(meta, stage),
            None,
            &self.config.rts,
        )
    }

    /// Rebuild a session from a checkpoint recipe and re-apply
    /// `resolution`, re-synthesizing the evicted round bit-identically
    /// (generation is deterministic in instance + overrides). Shared by
    /// the checkpoint-restore and panic-salvage paths. When the
    /// resolution discards the round anyway (an abstention finishes the
    /// session without reading it; a pin marks the stream stale and
    /// regenerates), the synthesis is skipped — only a `Continue`
    /// actually re-reads the parked round.
    fn rebuild_session(
        &self,
        inst: &Arc<Instance>,
        meta: &Arc<DbMeta>,
        stage: LinkTarget,
        cp: &SessionCheckpoint,
        resolution: &Option<FlagResolution>,
        scratch: &mut LinkScratch,
    ) -> LinkSession<'static> {
        let mut cp = cp.clone();
        if matches!(
            resolution,
            Some(FlagResolution::Abstain { .. } | FlagResolution::Pin(_))
        ) {
            cp.has_round = false;
        }
        let mbpp = match stage {
            LinkTarget::Tables => &self.mbpp_tables,
            LinkTarget::Columns => &self.mbpp_columns,
        };
        let mut session = LinkSession::restore_in(
            Handle::Shared(self.model.clone()),
            Handle::Shared(mbpp.clone()),
            Handle::Shared(inst.clone()),
            Handle::Shared(meta.clone()),
            stage,
            self.session_ctx(meta, stage),
            &self.config.rts,
            &cp,
            &mut scratch.synth,
        );
        if let Some(res) = resolution {
            session.resolve(res.clone());
        }
        session
    }

    /// The abstention every shed stage degrades to.
    fn shed_outcome() -> RtsOutcome {
        RtsOutcome {
            abstained: true,
            predicted: Vec::new(),
            correct: false,
            would_be_correct: false,
            n_interventions: 0,
            n_flags: 0,
        }
    }

    /// Retire a ticket: `columns` is the finished column outcome, or
    /// `None` when shedding (or an unrecoverable fault, `faulted`) cut
    /// the run short at `stage`.
    fn finalize(
        &self,
        id: TicketId,
        tenant: TenantId,
        stage: LinkTarget,
        columns: Option<RtsOutcome>,
        shed: bool,
        faulted: bool,
    ) {
        let mut st = self.state.lock();
        let Some(ticket) = st.tickets.get_mut(&id) else {
            // Finalizing an id with no ticket record: nothing to
            // retire. Absorb the accounting bug instead of panicking
            // with the state lock held.
            debug_assert!(false, "finalized ticket exists");
            self.counters.note_breach();
            return;
        };
        let tables = match ticket.tables.take() {
            Some(t) => t,
            None => {
                debug_assert!((shed || faulted) && stage == LinkTarget::Tables);
                Self::shed_outcome()
            }
        };
        let columns = columns.unwrap_or_else(Self::shed_outcome);
        let outcome = ServeOutcome {
            outcome: JointOutcome { tables, columns },
            shed,
            timed_out: ticket.timed_out,
            faulted,
            drained: ticket.drained,
            latency: ticket.submitted.elapsed(),
            n_feedback: ticket.n_feedback,
        };
        self.latencies_ms
            .lock()
            .push(outcome.latency.as_secs_f64() * 1e3);
        self.completed.fetch_add(1, Ordering::Relaxed);
        if shed {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
        }
        ticket.phase = Phase::Done(outcome);
        st.queues.note_done(tenant);
        drop(st);
        self.client_cv.notify_all();
    }

    /// Counter snapshot (latency percentiles recomputed on each call).
    pub fn stats(&self) -> ServingStats {
        // Copy the samples out under the lock; sort/summarize outside
        // it so workers finalizing requests are never stalled behind a
        // percentile computation.
        let samples = self.latencies_ms.lock().snapshot();
        let latency = LatencySummary::from_samples(&samples);
        let (tenants_seen, tenant_in_flight_peak) = {
            let st = self.state.lock();
            (st.queues.n_tenants(), st.queues.max_in_flight_peak())
        };
        ServingStats {
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            rejected_quota: self.counters.rejected_quota.load(Ordering::Relaxed),
            feedback_rounds: self.counters.feedback_rounds.load(Ordering::Relaxed),
            timed_out_to_abstention: self.counters.timed_out.load(Ordering::Relaxed),
            latency,
            queue_depth_max: self.counters.depth_max.load(Ordering::Relaxed),
            queue_depth_mean: self.counters.depth_mean(),
            cache: self.cache.stats(),
            parked_bytes_peak: self.counters.parked_bytes_peak.load(Ordering::Relaxed),
            parked_sessions_peak: self.counters.parked_sessions_peak.load(Ordering::Relaxed),
            parked_bytes_now: self.counters.parked_bytes.load(Ordering::Relaxed),
            parked_sessions_now: self.counters.parked_sessions.load(Ordering::Relaxed),
            checkpoints: self.counters.checkpoints.load(Ordering::Relaxed),
            restores: self.counters.restores.load(Ordering::Relaxed),
            checkpoint_bytes_peak: self.counters.checkpoint_bytes_peak.load(Ordering::Relaxed),
            checkpoint_bytes_now: self.counters.checkpoint_bytes.load(Ordering::Relaxed),
            tenants_seen,
            tenant_in_flight_peak,
            panics_recovered: self.counters.panics_recovered.load(Ordering::Relaxed),
            panics_to_abstention: self.counters.panics_to_abstention.load(Ordering::Relaxed),
            corrupt_checkpoints_recovered: self
                .counters
                .corrupt_checkpoints_recovered
                .load(Ordering::Relaxed),
            context_build_fallbacks: self
                .counters
                .context_build_fallbacks
                .load(Ordering::Relaxed),
            feedback_lost: self.counters.feedback_lost.load(Ordering::Relaxed),
            feedback_delayed: self.counters.feedback_delayed.load(Ordering::Relaxed),
            drained_to_abstention: self.counters.drained_to_abstention.load(Ordering::Relaxed),
            db_invalidations: self.counters.db_invalidations.load(Ordering::Relaxed),
            invariant_breaches: self.counters.invariant_breaches.load(Ordering::Relaxed),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_core::abstention::MitigationPolicy;
    use rts_core::bpp::{MbppConfig, ProbeConfig};
    use rts_core::branching::BranchDataset;
    use rts_core::human::{Expertise, HumanOracle};
    use rts_core::session::resolve_flag;

    struct Fx {
        bench: benchgen::Benchmark,
        model: SchemaLinker,
        mbpp_t: Mbpp,
        mbpp_c: Mbpp,
    }

    fn fixture() -> Fx {
        let bench = benchgen::BenchmarkProfile::bird_like()
            .scaled(0.04)
            .generate(77);
        let model = SchemaLinker::new("bird", 5);
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds_t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 300);
        let ds_c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 300);
        let mbpp_t = Mbpp::train(&ds_t, &cfg);
        let mbpp_c = Mbpp::train(&ds_c, &cfg);
        Fx {
            bench,
            model,
            mbpp_t,
            mbpp_c,
        }
    }

    /// Closed-loop client: the shared [`crate::drive_closed_loop`]
    /// driver with the oracle as the (never-stalling) feedback
    /// provider. A `Stale` resolve is a legal race (timeout or
    /// injected loss beat the answer) and is absorbed by the driver.
    fn client_run(
        engine: &ServeEngine,
        tenant: TenantId,
        instances: &[benchgen::Instance],
        oracle: &HumanOracle,
    ) -> Vec<(u64, ServeOutcome)> {
        let policy = MitigationPolicy::Human(oracle);
        crate::drive_closed_loop(engine, tenant, instances, |inst, query| {
            Some(resolve_flag(&policy, inst, query))
        })
    }

    fn assert_batch_parity(
        fx: &Fx,
        engine: &ServeEngine,
        oracle: &HumanOracle,
        instances: &[benchgen::Instance],
        all: &[(u64, ServeOutcome)],
    ) {
        let contexts = rts_core::context::LinkContexts::build(&fx.bench);
        let policy = MitigationPolicy::Human(oracle);
        let mut scratch = LinkScratch::default();
        for (id, served) in all {
            let Some(inst) = instances.iter().find(|i| i.id == *id) else {
                panic!("served outcome for instance {id} not in the submitted slice");
            };
            let batch = rts_core::pipeline::run_joint_linking_in(
                &fx.model,
                &fx.mbpp_t,
                &fx.mbpp_c,
                inst,
                &fx.bench,
                &contexts,
                &policy,
                &engine.config().rts,
                &mut scratch,
            );
            assert_eq!(
                format!("{:?}", served.outcome),
                format!("{batch:?}"),
                "instance {id}"
            );
            assert!(!served.shed);
            assert!(!served.timed_out);
            assert!(!served.faulted);
            assert!(!served.drained);
        }
    }

    #[test]
    fn engine_serves_concurrent_tenants_with_feedback() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(40).cloned().collect();
        let config = ServeConfig {
            workers: 3,
            queue_capacity: 4,
            cache_capacity: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let n_clients = 4;
        let chunks: Vec<&[benchgen::Instance]> = instances.chunks(10).collect();
        let results: Vec<Vec<(u64, ServeOutcome)>> = crossbeam::thread::scope(|s| {
            for _ in 0..engine.config().workers {
                s.spawn(|_| engine.worker_loop());
            }
            let handles: Vec<_> = (0..n_clients)
                .map(|c| {
                    let engine = &engine;
                    let chunk = chunks[c];
                    let oracle = &oracle;
                    // Each client is its own tenant: the fair queue and
                    // per-tenant accounting are on the hot path.
                    s.spawn(move |_| client_run(engine, c as TenantId, chunk, oracle))
                })
                .collect();
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("client panicked"))
                .collect();
            engine.shutdown();
            results
        })
        .expect("serve scope panicked");

        let all: Vec<(u64, ServeOutcome)> = results.into_iter().flatten().collect();
        assert_eq!(all.len(), instances.len());
        let stats = engine.stats();
        assert_eq!(stats.completed, instances.len() as u64);
        assert_eq!(stats.shed, 0, "no deadline configured");
        assert_eq!(stats.timed_out_to_abstention, 0, "no timeout configured");
        assert!(
            stats.feedback_rounds > 0,
            "a human workload must consult at least once"
        );
        assert!(stats.cache.hits > 0, "contexts must be reused");
        assert_eq!(stats.tenants_seen, n_clients);
        assert!(
            stats.tenant_in_flight_peak <= 1,
            "closed-loop clients keep one request in flight"
        );
        assert_eq!(stats.parked_bytes_now, 0, "drained engine parks nothing");
        assert_eq!(stats.parked_sessions_now, 0);
        // Engine outcomes ≡ the batch runtime, instance by instance.
        assert_batch_parity(&fx, &engine, &oracle, &instances, &all);
    }

    #[test]
    fn checkpointed_parked_sessions_restore_bit_identically() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(24).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            // A 1-byte budget forces *every* parked session through the
            // checkpoint → restore path.
            parked_bytes_budget: 1,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len());
        let stats = engine.stats();
        assert!(
            stats.checkpoints > 0 && stats.restores == stats.checkpoints,
            "every park must checkpoint and restore (cp {}, restored {})",
            stats.checkpoints,
            stats.restores
        );
        assert_eq!(stats.checkpoint_bytes_now, 0, "all checkpoints consumed");
        assert_eq!(stats.parked_bytes_now, 0, "all live parked state released");
        // Checkpointing must never change answers — only where the
        // parked state lives.
        assert_batch_parity(&fx, &engine, &oracle, &instances, &outcomes);
    }

    #[test]
    fn feedback_timeout_degrades_to_abstention_not_drop() {
        let fx = fixture();
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(16).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            feedback_timeout: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        // A client that NEVER answers: it just waits for completion.
        let outcomes: Vec<(u64, ServeOutcome)> = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let mut out = Vec::new();
            for inst in &instances {
                let ticket = engine.submit(0, inst).expect("queue has room");
                loop {
                    match engine.wait_event(ticket) {
                        ClientEvent::NeedsFeedback { .. } => {
                            // Stall: let the engine time the flag out.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        ClientEvent::Done(done) => {
                            out.push((inst.id, done));
                            break;
                        }
                        ClientEvent::Retired => {
                            panic!("ticket {ticket} retired before its outcome was collected")
                        }
                    }
                }
            }
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len(), "timeouts never drop");
        let stats = engine.stats();
        assert!(
            stats.timed_out_to_abstention > 0,
            "a stalled client must hit the feedback timeout"
        );
        let mut timed_out_seen = false;
        for (id, o) in &outcomes {
            if o.timed_out {
                timed_out_seen = true;
                assert!(
                    o.outcome.abstained(),
                    "timed-out request must abstain (instance {id})"
                );
                assert_eq!(o.n_feedback, 0, "the stalled client never answered");
            }
        }
        assert!(timed_out_seen);
        assert_eq!(stats.parked_bytes_now, 0);
        assert_eq!(stats.parked_sessions_now, 0);
    }

    #[test]
    fn zero_deadline_sheds_to_abstention_not_drops() {
        let fx = fixture();
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(8).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len(), "shedding never drops");
        for (_, o) in &outcomes {
            assert!(o.shed);
            assert!(o.outcome.abstained(), "shed degrades to abstention");
        }
        let stats = engine.stats();
        assert_eq!(stats.shed, instances.len() as u64);
        assert_eq!(
            stats.cache.misses, 0,
            "an instantly-shed request never builds a context"
        );
    }

    #[test]
    fn bounded_admission_rejects_when_full() {
        let fx = fixture();
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        // No workers running: the queue only fills.
        let a = engine.submit(0, &fx.bench.split.dev[0]);
        let b = engine.submit(1, &fx.bench.split.dev[1]);
        let c = engine.submit(2, &fx.bench.split.dev[2]);
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(c, Err(SubmitError::QueueFull { capacity: 2 }));
        assert_eq!(engine.stats().rejected, 1);
        assert_eq!(engine.stats().queue_depth_max, 2);
    }

    #[test]
    fn tenant_quota_rejects_only_the_offender() {
        let fx = fixture();
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 0,
            quota: TenantQuota {
                max_in_flight: 2,
                max_parked: 0,
            },
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        // No workers: everything stays in flight. Tenant 0 fills its
        // quota; tenant 1 is untouched by tenant 0's backlog.
        assert!(engine.submit(0, &fx.bench.split.dev[0]).is_ok());
        assert!(engine.submit(0, &fx.bench.split.dev[1]).is_ok());
        assert_eq!(
            engine.submit(0, &fx.bench.split.dev[2]),
            Err(SubmitError::QuotaExceeded {
                tenant: 0,
                limit: 2
            })
        );
        assert!(engine.submit(1, &fx.bench.split.dev[3]).is_ok());
        let stats = engine.stats();
        assert_eq!(stats.rejected_quota, 1);
        assert_eq!(stats.rejected, 0, "quota rejections are billed apart");
        assert_eq!(stats.tenants_seen, 2);
        assert_eq!(stats.tenant_in_flight_peak, 2);
    }

    /// A query that cannot match any real park: no instance has id
    /// `u64::MAX`.
    fn bogus_query() -> FlagQuery {
        FlagQuery {
            instance: u64::MAX,
            is_table: true,
            round: 0,
            branch_pos: 0,
            element_idx: 0,
            gold_element: String::new(),
            implicated: Vec::new(),
            predicted: Vec::new(),
        }
    }

    #[test]
    fn unknown_database_is_a_typed_submit_error() {
        let fx = fixture();
        let mut foreign = fx.bench.split.dev[0].clone();
        foreign.db_name = "no_such_database".to_string();
        let engine = ServeEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            ServeConfig::default(),
        );
        // Used to be a worker panic at dispatch; now a typed rejection
        // at the edge, before any queue state changes.
        assert_eq!(
            engine.submit(0, &foreign),
            Err(SubmitError::UnknownDatabase {
                database: "no_such_database".to_string()
            })
        );
        let stats = engine.stats();
        assert_eq!(stats.rejected, 0, "not billed as queue backpressure");
        assert_eq!(stats.tenants_seen, 0, "rejected before tenant accounting");
    }

    #[test]
    fn dead_and_mismatched_tickets_get_typed_errors_not_panics() {
        let fx = fixture();
        let engine = ServeEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            ServeConfig::default(),
        );
        // Never-issued ticket: polling and answering are both typed.
        assert!(matches!(engine.wait_event(999), ClientEvent::Retired));
        assert_eq!(
            engine.resolve(999, &bogus_query(), FlagResolution::Continue),
            Err(ResolveError::Retired)
        );
        // A live ticket that is *not* awaiting feedback (no workers are
        // running, so it sits queued): an answer is stale, not a panic.
        let ticket = engine.submit(0, &fx.bench.split.dev[0]).expect("room");
        assert_eq!(
            engine.resolve(ticket, &bogus_query(), FlagResolution::Continue),
            Err(ResolveError::Stale)
        );
    }

    #[test]
    fn double_resolve_and_resolve_after_collection_are_typed() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let policy = MitigationPolicy::Human(&oracle);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(16).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let mut double_resolves = 0u32;
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            for inst in &instances {
                let ticket = engine.submit(0, inst).expect("queue has room");
                loop {
                    match engine.wait_event(ticket) {
                        ClientEvent::NeedsFeedback { query, .. } => {
                            engine
                                .resolve(ticket, &query, resolve_flag(&policy, inst, &query))
                                .expect("first answer to a live flag lands");
                            // The duplicate answer races the worker, but
                            // whatever it observes — re-queued, running,
                            // parked on the *next* flag, or done — the
                            // settled flag is gone, so it must be Stale.
                            assert_eq!(
                                engine.resolve(
                                    ticket,
                                    &query,
                                    FlagResolution::Abstain { consulted: false }
                                ),
                                Err(ResolveError::Stale),
                                "a settled flag must not be answerable twice"
                            );
                            double_resolves += 1;
                        }
                        ClientEvent::Done(_) => break,
                        ClientEvent::Retired => {
                            panic!("ticket {ticket} retired before collection")
                        }
                    }
                }
                // Collected: the ticket no longer exists.
                assert!(matches!(engine.wait_event(ticket), ClientEvent::Retired));
                assert_eq!(
                    engine.resolve(ticket, &bogus_query(), FlagResolution::Continue),
                    Err(ResolveError::Retired)
                );
            }
            engine.shutdown();
        })
        .expect("serve scope panicked");
        assert!(
            double_resolves > 0,
            "workload must exercise the double-resolve race"
        );
    }

    #[test]
    fn resolve_after_timeout_is_stale_then_retired() {
        let fx = fixture();
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(16).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            feedback_timeout: Some(Duration::from_millis(2)),
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let mut late_answers = 0u32;
        crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            for inst in &instances {
                let ticket = engine.submit(0, inst).expect("queue has room");
                let mut first_flag: Option<FlagQuery> = None;
                loop {
                    match engine.wait_event(ticket) {
                        ClientEvent::NeedsFeedback { query, .. } => {
                            if first_flag.is_none() {
                                // Stall far past the timeout, then answer
                                // anyway. The engine has already resolved
                                // the flag to abstention without us, so
                                // the late answer is stale — never a
                                // panic, never a double-application.
                                std::thread::sleep(Duration::from_millis(50));
                                assert_eq!(
                                    engine.resolve(ticket, &query, FlagResolution::Continue),
                                    Err(ResolveError::Stale)
                                );
                                late_answers += 1;
                                first_flag = Some(query);
                            } else {
                                // Later flags just lapse on their own.
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                        ClientEvent::Done(done) => {
                            assert_eq!(done.n_feedback, 0, "no answer ever landed");
                            break;
                        }
                        ClientEvent::Retired => {
                            panic!("ticket {ticket} retired before collection")
                        }
                    }
                }
                // `Done` collected the ticket: the very same answer now
                // hits a retired ticket, and polling agrees.
                if let Some(query) = first_flag {
                    assert_eq!(
                        engine.resolve(ticket, &query, FlagResolution::Continue),
                        Err(ResolveError::Retired)
                    );
                    assert!(matches!(engine.wait_event(ticket), ClientEvent::Retired));
                }
            }
            engine.shutdown();
        })
        .expect("serve scope panicked");
        assert!(late_answers > 0, "workload must park at least once");
        assert!(engine.stats().timed_out_to_abstention > 0);
    }

    #[test]
    fn shutdown_drains_parked_sessions_to_abstention() {
        let fx = fixture();
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(16).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            // Route some parks through the checkpoint path too: the
            // drain must release serialized state just the same.
            parked_bytes_budget: 1,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let outcomes: Vec<(u64, ServeOutcome)> = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let tickets: Vec<(u64, TicketId)> = instances
                .iter()
                .map(|inst| (inst.id, engine.submit(0, inst).expect("queue has room")))
                .collect();
            // Nobody answers feedback and no timeout is configured:
            // wait until the pool quiesces with every ticket either
            // done or parked forever.
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let stats = engine.stats();
                if stats.parked_sessions_now > 0
                    && stats.completed + stats.parked_sessions_now as u64 == instances.len() as u64
                {
                    break;
                }
                assert!(
                    Instant::now() < deadline,
                    "pool failed to quiesce with parked sessions"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            // Shutdown must complete the parked tickets, not strand them.
            engine.shutdown();
            tickets
                .into_iter()
                .map(|(id, ticket)| loop {
                    match engine.wait_event(ticket) {
                        ClientEvent::Done(done) => break (id, done),
                        ClientEvent::NeedsFeedback { .. } => {
                            // The drain is racing us; poll again.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        ClientEvent::Retired => panic!("ticket {ticket} dropped"),
                    }
                })
                .collect()
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len(), "drains never drop");
        let stats = engine.stats();
        assert_eq!(stats.completed, instances.len() as u64);
        assert!(
            stats.drained_to_abstention > 0,
            "quiescing with parked sessions guarantees drained tickets"
        );
        let mut drained_seen = 0u64;
        for (id, o) in &outcomes {
            if o.drained {
                drained_seen += 1;
                assert!(
                    o.outcome.abstained(),
                    "drained request must abstain (instance {id})"
                );
                assert_eq!(o.n_feedback, 0, "nobody ever answered");
            }
        }
        assert!(drained_seen > 0);
        // The counter bills per drained *flag* (a ticket can drain once
        // per stage), so it bounds the drained-ticket count from above.
        assert!(stats.drained_to_abstention >= drained_seen);
        assert_eq!(stats.parked_sessions_now, 0, "no session left parked");
        assert_eq!(stats.parked_bytes_now, 0, "all live parked state released");
        assert_eq!(stats.checkpoint_bytes_now, 0, "all checkpoints consumed");
    }

    #[test]
    fn injected_step_panics_recover_with_outcome_parity() {
        crate::fault::silence_injected_panics();
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(24).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            fault: FaultPlan::seeded(11, 0.0).with_rate(FaultSite::StepPanic, 0.2),
            // A deep budget: every panic recovers, none degrade — so
            // the outcomes must be byte-identical to the fault-free
            // batch run.
            step_retry_budget: 64,
            step_retry_backoff: Duration::ZERO,
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len(), "panics never drop");
        let stats = engine.stats();
        assert!(
            stats.panics_recovered > 0,
            "a 20% step-panic rate must fire on this workload"
        );
        assert_eq!(stats.panics_to_abstention, 0, "deep budget: all recovered");
        assert_eq!(stats.parked_bytes_now, 0);
        assert_eq!(stats.parked_sessions_now, 0);
        // The recovery path re-runs the deterministic generation
        // recipe, so recovered requests answer exactly as if nothing
        // had happened.
        assert_batch_parity(&fx, &engine, &oracle, &instances, &outcomes);
    }

    #[test]
    fn corrupt_checkpoints_regenerate_from_salvage_with_parity() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(24).cloned().collect();
        let config = ServeConfig {
            workers: 2,
            // Every park checkpoints…
            parked_bytes_budget: 1,
            // …and every checkpoint decode is corrupted: the engine
            // must re-run the regeneration recipe from its in-memory
            // salvage copy every single time.
            fault: FaultPlan::seeded(3, 0.0).with_rate(FaultSite::CheckpointDecode, 1.0),
            ..Default::default()
        };
        let engine = ServeEngine::new(&fx.model, &fx.mbpp_t, &fx.mbpp_c, &fx.bench.metas, config);
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");
        assert_eq!(outcomes.len(), instances.len());
        let stats = engine.stats();
        assert!(
            stats.checkpoints > 0,
            "1-byte budget checkpoints every park"
        );
        assert_eq!(
            stats.corrupt_checkpoints_recovered, stats.restores,
            "every restore hit a corrupt checkpoint and salvaged"
        );
        assert!(stats.corrupt_checkpoints_recovered > 0);
        assert_eq!(
            stats.checkpoint_bytes_now, 0,
            "corrupt bytes still billed off"
        );
        assert_eq!(stats.parked_bytes_now, 0);
        assert_batch_parity(&fx, &engine, &oracle, &instances, &outcomes);
    }

    #[test]
    fn schema_drift_rebuilds_contexts_without_disturbing_flights() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 9);
        let instances: Vec<benchgen::Instance> =
            fx.bench.split.dev.iter().take(12).cloned().collect();
        let engine = ServeEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            ServeConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let outcomes = crossbeam::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|_| engine.worker_loop());
            }
            let out = client_run(&engine, 0, &instances, &oracle);
            // Drift every database mid-flight-ish: outcomes already
            // collected must be untouched, and the counter must bill.
            for meta in fx.bench.metas.iter() {
                engine.invalidate_db(&meta.name);
            }
            let out2 = client_run(&engine, 0, &instances, &oracle);
            engine.shutdown();
            (out, out2)
        })
        .expect("serve scope panicked");
        let stats = engine.stats();
        assert_eq!(stats.db_invalidations, fx.bench.metas.len() as u64);
        // Dropped contexts rebuild; answers are a pure function of
        // `(instance, seed)`, so both passes match the batch runtime.
        assert_batch_parity(&fx, &engine, &oracle, &instances, &outcomes.0);
        assert_batch_parity(&fx, &engine, &oracle, &instances, &outcomes.1);
    }
}

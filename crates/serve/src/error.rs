//! The serving error hierarchy — one set of typed, serializable
//! errors shared by the in-process engines and the wire protocol.
//!
//! Clients see the *same* types whether they call a [`crate::engine::ServeEngine`]
//! in-process or an `rts-served` process over TCP: the wire layer
//! ships [`EngineError`] values as serde-JSON and the client crate
//! converts them back through the [`From`] impls below, so a
//! `SubmitError::QueueFull` raised three hops away still pattern-
//! matches as `SubmitError::QueueFull`. Transport-only failures
//! (connection loss, protocol violations, version skew) have their own
//! variants and fold into the in-process types as
//! `Unavailable`/`Retired` — degrade, never panic, never a silent
//! drop.

use crate::tenant::{TenantId, TicketId};
use serde::{Deserialize, Serialize};

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubmitError {
    /// The admission queue is at capacity — retry later (client-side
    /// backpressure).
    QueueFull { capacity: usize },
    /// The submitting tenant is at its own quota (in-flight or parked
    /// bound) — other tenants are unaffected; retry after some of this
    /// tenant's requests complete.
    QuotaExceeded { tenant: TenantId, limit: usize },
    /// The instance references a database the engine has no metadata
    /// for — a client-input error, rejected before any queue state
    /// changes (it used to panic a worker; see the robustness notes).
    UnknownDatabase { database: String },
    /// The server's instance corpus has no instance with this id — the
    /// wire protocol submits by instance id (client and server rebuild
    /// the same deterministic corpus), so an unknown id is a recipe
    /// mismatch or a client bug. Never raised in-process.
    UnknownInstance { instance: u64 },
    /// The engine could not be reached at all (connection refused,
    /// reconnect budget exhausted, server shutting down). Never raised
    /// in-process.
    Unavailable { detail: String },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} requests)")
            }
            SubmitError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant {tenant} at quota ({limit} requests)")
            }
            SubmitError::UnknownDatabase { database } => {
                write!(f, "no database metadata for {database}")
            }
            SubmitError::UnknownInstance { instance } => {
                write!(f, "no instance {instance} in the server corpus")
            }
            SubmitError::Unavailable { detail } => {
                write!(f, "engine unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a resolve was not applied. Either way the answer is *dropped,
/// never misapplied* — and never a panic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolveError {
    /// The ticket no longer exists: it completed and its outcome was
    /// collected through `wait_event`, or it was never issued.
    Retired,
    /// The ticket exists but is not suspended on the query being
    /// answered — the resolution lost a race (a feedback timeout
    /// already resolved the flag, a chained stage raised a newer one,
    /// or the same flag was resolved twice). Re-poll with `wait_event`
    /// for the current state.
    Stale,
    /// The engine could not be reached at all; whether the resolution
    /// landed is unknown. The parked session still degrades to
    /// abstention on its feedback timeout, so the request completes
    /// either way. Never raised in-process.
    Unavailable { detail: String },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::Retired => write!(f, "ticket already retired"),
            ResolveError::Stale => {
                write!(f, "ticket is not suspended on the answered flag")
            }
            ResolveError::Unavailable { detail } => {
                write!(f, "engine unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// The umbrella error the wire protocol ships: every way a served
/// request can fail, including transport-level failures the in-process
/// API never sees. [`From`] impls fold it back into
/// [`SubmitError`]/[`ResolveError`] so wire clients surface the exact
/// in-process types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineError {
    /// An admission failure, verbatim.
    Submit(SubmitError),
    /// A resolution failure, verbatim.
    Resolve(ResolveError),
    /// The ticket no longer exists (the wire mirror of
    /// `ClientEvent::Retired` when it must travel as an error).
    Retired { ticket: TicketId },
    /// The peer violated the framing or message protocol (malformed
    /// frame, out-of-order message, oversized payload).
    Protocol { detail: String },
    /// The connection failed mid-exchange.
    Transport { detail: String },
    /// Client and server speak different protocol versions.
    Version { server: u32, client: u32 },
    /// Client and server rebuilt different corpora — instance ids would
    /// not name the same instances, so every submit is refused up
    /// front.
    Fingerprint { server: String, client: String },
    /// A resume handshake named a session the server does not hold
    /// (expired, never existed, or already resumed elsewhere).
    UnknownSession { session: u64 },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Submit(e) => write!(f, "submit: {e}"),
            EngineError::Resolve(e) => write!(f, "resolve: {e}"),
            EngineError::Retired { ticket } => write!(f, "ticket {ticket} already retired"),
            EngineError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            EngineError::Transport { detail } => write!(f, "transport failure: {detail}"),
            EngineError::Version { server, client } => {
                write!(
                    f,
                    "wire version mismatch (server v{server}, client v{client})"
                )
            }
            EngineError::Fingerprint { server, client } => {
                write!(
                    f,
                    "corpus fingerprint mismatch (server {server}, client {client})"
                )
            }
            EngineError::UnknownSession { session } => {
                write!(f, "no resumable session {session}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SubmitError> for EngineError {
    fn from(e: SubmitError) -> Self {
        EngineError::Submit(e)
    }
}

impl From<ResolveError> for EngineError {
    fn from(e: ResolveError) -> Self {
        EngineError::Resolve(e)
    }
}

/// Fold a wire error back into the in-process submit type: engine
/// rejections come back verbatim; transport-level failures surface as
/// [`SubmitError::Unavailable`] with the detail preserved.
impl From<EngineError> for SubmitError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Submit(e) => e,
            other => SubmitError::Unavailable {
                detail: other.to_string(),
            },
        }
    }
}

/// Fold a wire error back into the in-process resolve type: engine
/// verdicts come back verbatim, a retired ticket stays
/// [`ResolveError::Retired`], and transport-level failures surface as
/// [`ResolveError::Unavailable`].
impl From<EngineError> for ResolveError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Resolve(e) => e,
            EngineError::Retired { .. } => ResolveError::Retired,
            other => ResolveError::Unavailable {
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_errors_round_trip_as_in_process_types() {
        let submit = SubmitError::QueueFull { capacity: 8 };
        let via_wire: EngineError = submit.clone().into();
        let json = serde_json::to_string(&via_wire).expect("engine error serializes");
        let back: EngineError = serde_json::from_str(&json).expect("engine error parses");
        assert_eq!(back, via_wire);
        assert_eq!(SubmitError::from(back), submit);

        let resolve = ResolveError::Stale;
        let via_wire: EngineError = resolve.clone().into();
        let json = serde_json::to_string(&via_wire).expect("engine error serializes");
        let back: EngineError = serde_json::from_str(&json).expect("engine error parses");
        assert_eq!(ResolveError::from(back), resolve);
    }

    #[test]
    fn transport_failures_fold_to_unavailable_not_panic() {
        let e = EngineError::Version {
            server: 2,
            client: 1,
        };
        let SubmitError::Unavailable { detail } = SubmitError::from(e.clone()) else {
            panic!("transport error must fold to Unavailable");
        };
        assert!(detail.contains("version"), "detail preserved: {detail}");
        let ResolveError::Unavailable { .. } = ResolveError::from(e) else {
            panic!("transport error must fold to Unavailable");
        };
        assert_eq!(
            ResolveError::from(EngineError::Retired { ticket: 3 }),
            ResolveError::Retired
        );
    }

    #[test]
    fn quota_rejections_survive_the_wire_verbatim() {
        for e in [
            SubmitError::QuotaExceeded {
                tenant: 7,
                limit: 2,
            },
            SubmitError::UnknownDatabase {
                database: "db_9".into(),
            },
            SubmitError::UnknownInstance { instance: 41 },
        ] {
            let round: SubmitError = EngineError::from(e.clone()).into();
            assert_eq!(round, e);
        }
    }
}

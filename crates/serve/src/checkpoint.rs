//! Parked-session checkpointing: the byte codec and the engine's
//! eviction policy helpers.
//!
//! A parked session's memory is dominated by its current round's
//! synthesized hidden-state stacks (tens of kilobytes per request —
//! megabytes once thousands of tenants park on slow humans). The
//! [`rts_core::session::SessionCheckpoint`] drops the stacks and keeps
//! only the recipe + irreplaceable state, so a checkpointed ticket
//! costs a few hundred bytes of JSON instead. Restoration
//! re-synthesizes the round bit-identically on a worker thread when
//! the feedback finally arrives (or times out).

use rts_core::session::SessionCheckpoint;

/// Serialize a checkpoint through the serde shim into an owned byte
/// buffer (UTF-8 JSON — self-describing, deterministic: override and
/// handled sets are sorted before encoding).
pub fn encode(cp: &SessionCheckpoint) -> Vec<u8> {
    serde_json::to_string(cp)
        // rts-allow(panic): the shim serializer is infallible on plain
        // data types — SessionCheckpoint holds only ints, strings, and
        // vecs, no map keys or floats that could fail to encode.
        .expect("session checkpoint serializes")
        .into_bytes()
}

/// Why a checkpoint failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt session checkpoint: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Rebuild a checkpoint from [`encode`]'s bytes. The buffer never
/// leaves the engine, so a decode failure means corruption — the
/// engine recovers by re-running the regeneration recipe from its
/// in-memory salvage copy, or degrades the ticket to abstention
/// (never a worker panic).
pub fn try_decode(bytes: &[u8]) -> Result<SessionCheckpoint, DecodeError> {
    let text = std::str::from_utf8(bytes).map_err(|e| DecodeError(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| DecodeError(format!("{e:?}")))
}

/// [`try_decode`] for callers that treat corruption as a bug (tests,
/// offline tooling). Panics on corrupt bytes.
pub fn decode(bytes: &[u8]) -> SessionCheckpoint {
    // rts-allow(panic): documented panic-on-corruption helper for
    // tests and offline tooling; the engine itself uses try_decode.
    try_decode(bytes).expect("checkpoint bytes parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rts_core::session::FlagQuery;
    use simlm::Decision;

    fn sample() -> SessionCheckpoint {
        SessionCheckpoint {
            instance: 41,
            is_table: false,
            corpus: simlm::CorpusVersion::default(),
            rng_state: 0xDEAD_BEEF_0BAD_F00D,
            would_be_correct: Some(false),
            overrides: vec![
                ("orders".into(), Decision::Correct),
                ("users".into(), Decision::Substitute("user_logs".into())),
            ],
            handled: vec![0, 2],
            n_interventions: 2,
            n_flags: 5,
            rounds_done: 3,
            stale: false,
            has_round: true,
            pending: Some(FlagQuery {
                instance: 41,
                is_table: false,
                round: 2,
                branch_pos: 7,
                element_idx: 1,
                gold_element: "users.name".into(),
                implicated: vec!["users.nick".into()],
                predicted: vec!["orders.id".into(), "users.nick".into()],
            }),
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let cp = sample();
        assert_eq!(decode(&encode(&cp)), cp);
    }

    #[test]
    fn encoding_is_deterministic_and_small() {
        let cp = sample();
        assert_eq!(encode(&cp), encode(&cp));
        // The point of checkpointing: bytes are of query-text order,
        // not hidden-stack order (tens of KB).
        assert!(encode(&cp).len() < 2048, "checkpoint unexpectedly large");
    }

    #[test]
    fn corpus_version_roundtrips_in_checkpoints() {
        // Both versions survive the codec, and the default stamps v2 —
        // the serving half of the corpus-version serde contract.
        let cp = sample();
        assert_eq!(decode(&encode(&cp)).corpus, simlm::CorpusVersion::V2);
        let mut v1 = sample();
        v1.corpus = simlm::CorpusVersion::V1;
        assert_eq!(decode(&encode(&v1)).corpus, simlm::CorpusVersion::V1);
        // The tag lands in the JSON as a plain string, so a corpus
        // mismatch is visible in the raw bytes too.
        assert!(String::from_utf8(encode(&v1)).unwrap().contains("\"V1\""));
    }

    #[test]
    fn full_u64_rng_state_survives_json() {
        let mut cp = sample();
        cp.rng_state = u64::MAX;
        assert_eq!(decode(&encode(&cp)).rng_state, u64::MAX);
    }

    #[test]
    fn corrupt_bytes_fail_decode_without_panicking() {
        assert!(try_decode(b"").is_err(), "empty buffer");
        assert!(try_decode(&[0xFF, 0xFE, 0x00]).is_err(), "not UTF-8");
        assert!(try_decode(b"{\"instance\": 41").is_err(), "truncated JSON");
        let mut bytes = encode(&sample());
        bytes.truncate(bytes.len() / 2);
        assert!(try_decode(&bytes).is_err(), "half a checkpoint");
    }
}

//! The framed wire protocol `rts-served` speaks — message types,
//! length-prefixed framing, and the serializable mirror of
//! [`ServeOutcome`]. See `PROTOCOL.md` at the repo root for the
//! normative reference.
//!
//! **Framing.** Every message is one frame: a 4-byte little-endian
//! payload length followed by that many bytes of serde-JSON. Frames
//! above [`MAX_FRAME`] are refused *before* allocating
//! ([`WireError::TooLarge`]); a connection that ends mid-frame reads
//! as [`WireError::Truncated`], cleanly distinguishable from an
//! end-of-stream between frames (`Ok(None)`). Every decode failure is
//! a typed [`WireError`] — a malformed peer can never panic the
//! process.
//!
//! **Versioning.** The first exchange on every connection is
//! `Hello{version}` / `HelloAck{version, ..}` carrying
//! [`WIRE_VERSION`]; mismatched peers part with a typed
//! [`crate::error::EngineError::Version`] instead of mis-decoding each
//! other's frames. The `HelloAck` also carries the server's corpus
//! fingerprint — submits travel as instance *ids* (client and server
//! rebuild the same deterministic corpus from the same recipe), so a
//! fingerprint mismatch means ids would name different instances and
//! the client refuses up front.
//!
//! **Request ids.** Every `Submit` carries a client-chosen `req` id,
//! unique per session; it is the ticket handle for every later event,
//! resolution, and reconnect-resume concerning that request. Ids are
//! session-scoped: a reconnecting client resumes its session (`Hello`
//! with `resume`) and keeps using the same ids — the engine-side
//! ticket survives the connection, which is what makes a dropped
//! connection equivalent to a parked session instead of a lost one.

use crate::engine::ServeOutcome;
use crate::error::EngineError;
use crate::stats::ServingStats;
use crate::tenant::TenantId;
use rts_core::pipeline::JointOutcome;
use rts_core::session::{FlagQuery, FlagResolution};
use serde::{Deserialize, Serialize};
use simlm::LinkTarget;
use std::io::{Read, Write};
use std::time::Duration;

/// Protocol version spoken by this build. Bump on any change to the
/// framing or message schema.
pub const WIRE_VERSION: u32 = 1;

/// Upper bound on a frame's payload length. Larger prefixes are
/// refused before any allocation — a corrupt or hostile length prefix
/// must not OOM the server.
pub const MAX_FRAME: usize = 1 << 20;

/// The deterministic corpus recipe, flattened to a comparable string.
/// Server and client each compute it from their own build
/// configuration; because the corpus is a pure function of this
/// recipe, equal fingerprints guarantee instance ids name identical
/// instances on both ends. Carried in `HelloAck`.
pub fn corpus_fingerprint(
    profile: &str,
    scale: f64,
    seed: u64,
    corpus: simlm::CorpusVersion,
) -> String {
    format!("{profile}|scale={scale}|seed={seed}|corpus={corpus:?}|wire=v{WIRE_VERSION}")
}

/// Why a frame could not be read or written. Transport-level: these
/// never cross the wire themselves; the peer that hits one closes (or
/// answers with a `ServerMsg::Fault` first when the socket still
/// works).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying socket failed.
    Io { detail: String },
    /// A length prefix exceeded [`MAX_FRAME`].
    TooLarge { len: u64 },
    /// The stream ended inside a frame (mid-prefix or mid-payload) —
    /// the peer died mid-send, unlike the clean between-frames EOF
    /// that reads as `Ok(None)`.
    Truncated,
    /// The payload was not valid JSON for the expected message type.
    Malformed { detail: String },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io { detail } => write!(f, "socket failure: {detail}"),
            WireError::TooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte bound")
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Malformed { detail } => write!(f, "malformed frame payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io { detail } => EngineError::Transport { detail },
            WireError::Truncated => EngineError::Transport {
                detail: "stream ended mid-frame".to_string(),
            },
            other => EngineError::Protocol {
                detail: other.to_string(),
            },
        }
    }
}

/// Serialize `msg` into one length-prefixed frame on `w`.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), WireError> {
    let payload = serde_json::to_string(msg).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })?;
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(WireError::TooLarge {
            len: bytes.len() as u64,
        });
    }
    let prefix = (bytes.len() as u32).to_le_bytes();
    let io = |e: std::io::Error| WireError::Io {
        detail: e.to_string(),
    };
    w.write_all(&prefix).map_err(io)?;
    w.write_all(bytes).map_err(io)?;
    w.flush().map_err(io)
}

/// Read one frame from `r` and decode it as `T`. `Ok(None)` is the
/// clean end of stream (the peer closed *between* frames); every other
/// failure is typed — truncation, an oversized prefix (refused before
/// allocating), undecodable payload, or a socket error.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < prefix.len() {
        // rts-allow(panic): the loop guard holds got < prefix.len(),
        // so the range start is always in bounds
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(WireError::Io {
                    detail: e.to_string(),
                })
            }
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge { len: len as u64 });
    }
    let mut payload = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut payload) {
        return Err(match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            _ => WireError::Io {
                detail: e.to_string(),
            },
        });
    }
    let text = String::from_utf8(payload).map_err(|e| WireError::Malformed {
        detail: e.to_string(),
    })?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| WireError::Malformed {
            detail: e.to_string(),
        })
}

/// [`ServeOutcome`] as it travels the wire: identical fields except
/// the latency, carried as integer microseconds (the serde shim has no
/// `Duration` impl, and sub-microsecond latency precision is noise at
/// network scale anyway).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireOutcome {
    pub outcome: JointOutcome,
    pub shed: bool,
    pub timed_out: bool,
    pub faulted: bool,
    pub drained: bool,
    pub latency_us: u64,
    pub n_feedback: usize,
}

impl From<ServeOutcome> for WireOutcome {
    fn from(o: ServeOutcome) -> Self {
        WireOutcome {
            outcome: o.outcome,
            shed: o.shed,
            timed_out: o.timed_out,
            faulted: o.faulted,
            drained: o.drained,
            latency_us: o.latency.as_micros().min(u128::from(u64::MAX)) as u64,
            n_feedback: o.n_feedback,
        }
    }
}

impl From<WireOutcome> for ServeOutcome {
    fn from(o: WireOutcome) -> Self {
        ServeOutcome {
            outcome: o.outcome,
            shed: o.shed,
            timed_out: o.timed_out,
            faulted: o.faulted,
            drained: o.drained,
            latency: Duration::from_micros(o.latency_us),
            n_feedback: o.n_feedback,
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClientMsg {
    /// First message on every connection. `resume` names a previous
    /// session to re-attach to (after a dropped connection); `None`
    /// opens a fresh session.
    Hello { version: u32, resume: Option<u64> },
    /// Admit instance `instance` (by corpus id) for `tenant`. `req` is
    /// the client-chosen, session-unique handle for this request.
    Submit {
        req: u64,
        tenant: TenantId,
        instance: u64,
    },
    /// Answer request `ticket`'s pending flag. `req` identifies the
    /// ack; `query` is the flag being answered (its identity guards
    /// the resolution against races, exactly as in-process).
    Resolve {
        req: u64,
        ticket: u64,
        query: FlagQuery,
        resolution: FlagResolution,
    },
    /// Request a [`ServingStats`] snapshot.
    Stats { req: u64 },
    /// Drop `database`'s cached contexts on the server.
    InvalidateDb { req: u64, database: String },
    /// Override a tenant's fair-share weight. Fire-and-forget.
    SetTenantWeight { tenant: TenantId, weight: u32 },
    /// Ask the server to drain and exit. Fire-and-forget.
    Shutdown,
    /// Clean goodbye: the client is done and its session (with every
    /// request in it) can be retired — unlike a silent drop, which
    /// parks the session for resume.
    Bye,
}

/// Server → client messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Handshake reply: the server's protocol version, the session id
    /// to resume with after a reconnect, and the corpus fingerprint
    /// the client must match for instance ids to be meaningful.
    HelloAck {
        version: u32,
        session: u64,
        fingerprint: String,
    },
    /// `Submit { req }` was admitted; events for it will follow.
    Submitted { req: u64 },
    /// `Submit { req }` was refused.
    SubmitFailed { req: u64, error: EngineError },
    /// Request `req` suspended on a branching flag — answer with
    /// [`ClientMsg::Resolve`].
    NeedsFeedback {
        req: u64,
        target: LinkTarget,
        query: FlagQuery,
    },
    /// Request `req` finished.
    Done { req: u64, outcome: WireOutcome },
    /// Request `req` no longer exists server-side.
    Retired { req: u64 },
    /// `Resolve { req }` was applied.
    Resolved { req: u64 },
    /// `Resolve { req }` was not applied (stale/retired — the same
    /// typed races as in-process).
    ResolveFailed { req: u64, error: EngineError },
    /// [`ClientMsg::Stats`] reply.
    Stats { req: u64, stats: ServingStats },
    /// [`ClientMsg::InvalidateDb`] reply: contexts dropped.
    Invalidated { req: u64, dropped: usize },
    /// Connection-level failure the server can still report before
    /// closing (version mismatch, malformed frame, unknown resume
    /// session).
    Fault { error: EngineError },
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(msg: &ClientMsg) -> ClientMsg {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).expect("frame writes");
        let back: Option<ClientMsg> = read_frame(&mut Cursor::new(&buf)).expect("frame reads");
        back.expect("one frame present")
    }

    #[test]
    fn frames_round_trip_every_client_message() {
        let query = FlagQuery {
            instance: 7,
            is_table: true,
            round: 1,
            branch_pos: 3,
            element_idx: 0,
            gold_element: "t_orders".into(),
            implicated: vec!["t_orders".into(), "t_users".into()],
            predicted: vec!["t_users".into()],
        };
        for msg in [
            ClientMsg::Hello {
                version: WIRE_VERSION,
                resume: Some(11),
            },
            ClientMsg::Submit {
                req: 1,
                tenant: 4,
                instance: 900,
            },
            ClientMsg::Resolve {
                req: 2,
                ticket: 1,
                query: query.clone(),
                resolution: FlagResolution::Abstain { consulted: true },
            },
            ClientMsg::Stats { req: 3 },
            ClientMsg::InvalidateDb {
                req: 4,
                database: "db_0".into(),
            },
            ClientMsg::SetTenantWeight {
                tenant: 4,
                weight: 3,
            },
            ClientMsg::Shutdown,
            ClientMsg::Bye,
        ] {
            let back = roundtrip(&msg);
            assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
    }

    #[test]
    fn consecutive_frames_read_in_order_then_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientMsg::Stats { req: 1 }).expect("writes");
        write_frame(&mut buf, &ClientMsg::Bye).expect("writes");
        let mut r = Cursor::new(&buf);
        let a: Option<ClientMsg> = read_frame(&mut r).expect("reads");
        let b: Option<ClientMsg> = read_frame(&mut r).expect("reads");
        let end: Option<ClientMsg> = read_frame(&mut r).expect("clean EOF is not an error");
        assert!(matches!(a, Some(ClientMsg::Stats { req: 1 })));
        assert!(matches!(b, Some(ClientMsg::Bye)));
        assert!(end.is_none(), "between-frames EOF reads as None");
    }

    #[test]
    fn truncated_frames_are_typed_never_panics() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &ClientMsg::Stats { req: 9 }).expect("writes");
        // Cut mid-payload…
        let cut = buf.len() - 3;
        let r: Result<Option<ClientMsg>, _> = read_frame(&mut Cursor::new(&buf[..cut]));
        assert!(matches!(r, Err(WireError::Truncated)), "{r:?}");
        // …and mid-prefix.
        let r: Result<Option<ClientMsg>, _> = read_frame(&mut Cursor::new(&buf[..2]));
        assert!(matches!(r, Err(WireError::Truncated)), "{r:?}");
    }

    #[test]
    fn oversized_prefix_is_refused_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(b"whatever");
        let r: Result<Option<ClientMsg>, _> = read_frame(&mut Cursor::new(&buf));
        assert!(
            matches!(r, Err(WireError::TooLarge { len }) if len == u64::from(u32::MAX)),
            "{r:?}"
        );
    }

    #[test]
    fn garbage_payload_is_malformed_not_a_panic() {
        let garbage = b"not json at all";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        buf.extend_from_slice(garbage);
        let r: Result<Option<ClientMsg>, _> = read_frame(&mut Cursor::new(&buf));
        assert!(matches!(r, Err(WireError::Malformed { .. })), "{r:?}");
        // Valid JSON of the wrong shape is malformed too.
        let wrong = serde_json::to_string(&ServerMsg::Retired { req: 1 }).expect("serializes");
        let mut buf = Vec::new();
        buf.extend_from_slice(&(wrong.len() as u32).to_le_bytes());
        buf.extend_from_slice(wrong.as_bytes());
        let r: Result<Option<ClientMsg>, _> = read_frame(&mut Cursor::new(&buf));
        assert!(matches!(r, Err(WireError::Malformed { .. })), "{r:?}");
    }

    #[test]
    fn wire_outcome_mirrors_serve_outcome() {
        let serve = ServeOutcome {
            outcome: JointOutcome {
                tables: rts_core::abstention::RtsOutcome {
                    abstained: false,
                    predicted: vec!["a".into()],
                    correct: true,
                    would_be_correct: true,
                    n_interventions: 1,
                    n_flags: 2,
                },
                columns: rts_core::abstention::RtsOutcome {
                    abstained: true,
                    predicted: Vec::new(),
                    correct: false,
                    would_be_correct: false,
                    n_interventions: 0,
                    n_flags: 1,
                },
            },
            shed: false,
            timed_out: true,
            faulted: false,
            drained: false,
            latency: Duration::from_micros(12_345),
            n_feedback: 3,
        };
        let wire: WireOutcome = serve.clone().into();
        let json = serde_json::to_string(&wire).expect("serializes");
        let back: WireOutcome = serde_json::from_str(&json).expect("parses");
        let restored: ServeOutcome = back.into();
        assert_eq!(format!("{restored:?}"), format!("{serve:?}"));
    }
}

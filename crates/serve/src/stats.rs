//! Serving-side accounting: latency percentiles, queue depth, parked
//! memory — the numbers the workload driver records into
//! `BENCH_rts.json`.

use rts_core::context::ContextCacheStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Latency distribution of completed requests, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarize a sample set (order irrelevant). Empty input yields
    /// all-zero summaries.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| {
            // Nearest-rank percentile: the smallest sample ≥ q of the
            // distribution — no interpolation artefacts on tiny sets.
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            // rts-allow(panic): rank is clamped to 1..=len above, so
            // rank - 1 is always in bounds for the non-empty vec.
            sorted[rank - 1]
        };
        Self {
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max_ms: sorted.last().copied().unwrap_or_default(),
        }
    }
}

/// Snapshot of an engine's counters (see [`crate::ServeEngine::stats`]).
/// `Default` is the all-zero snapshot of an engine that never served.
/// Serializable so a standalone server can ship it to a remote client.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ServingStats {
    /// Requests that ran to completion (including shed and timed-out
    /// ones — both degrade to abstention, neither drops a request).
    pub completed: u64,
    /// Completed requests whose deadline expired mid-flight, answered
    /// by degrading the remaining stages to abstention.
    pub shed: u64,
    /// Submissions rejected at admission (queue full).
    pub rejected: u64,
    /// Submissions rejected by a per-tenant quota (in-flight or parked
    /// bound) — backpressure on the tenant causing the load.
    pub rejected_quota: u64,
    /// Feedback resolutions applied across all requests.
    pub feedback_rounds: u64,
    /// Parked sessions whose feedback deadline lapsed and were resumed
    /// with an abstention verdict (degrade, never drop).
    pub timed_out_to_abstention: u64,
    /// Latency distribution over completed requests.
    pub latency: LatencySummary,
    /// Work-queue depth (admission + resume) observed at submits.
    pub queue_depth_max: usize,
    pub queue_depth_mean: f64,
    /// Context-cache counters (hits/misses/evictions).
    pub cache: ContextCacheStats,
    /// Peak bytes of generation state held by parked sessions.
    pub parked_bytes_peak: usize,
    /// Peak number of simultaneously parked sessions.
    pub parked_sessions_peak: usize,
    /// Bytes of generation state parked *right now* (returns to 0 once
    /// the engine drains — parked state is released eagerly).
    pub parked_bytes_now: usize,
    /// Sessions parked right now.
    pub parked_sessions_now: usize,
    /// Parked sessions evicted to checkpoint bytes (cumulative).
    pub checkpoints: u64,
    /// Checkpointed sessions re-synthesized on resume (cumulative).
    pub restores: u64,
    /// Peak bytes held in serialized checkpoints.
    pub checkpoint_bytes_peak: usize,
    /// Checkpoint bytes resident right now (0 after drain).
    pub checkpoint_bytes_now: usize,
    /// Distinct tenants that ever submitted.
    pub tenants_seen: usize,
    /// Highest concurrent in-flight count any single tenant reached —
    /// what a fairness self-check compares against the quota.
    pub tenant_in_flight_peak: usize,
    /// Step panics caught by a worker's `catch_unwind` (injected or
    /// genuine) — each one left the pool intact and the ticket
    /// salvaged into a retry or an abstention.
    pub panics_recovered: u64,
    /// Tickets whose step kept panicking past the retry budget and
    /// degraded to a `faulted` abstention (never a drop).
    pub panics_to_abstention: u64,
    /// Checkpoints that failed to decode and were rebuilt from the
    /// ticket's in-memory salvage recipe instead.
    pub corrupt_checkpoints_recovered: u64,
    /// Context-cache builds that failed and fell back to the
    /// context-free reference path (outcome-identical, just slower).
    pub context_build_fallbacks: u64,
    /// Client resolutions lost in flight (injected); the park timeout
    /// completed those requests as abstention hand-offs.
    pub feedback_lost: u64,
    /// Client resolutions delayed in flight (injected).
    pub feedback_delayed: u64,
    /// Parked sessions resolved to abstention by a shutdown drain —
    /// shutdown completes every ticket, it never strands one.
    pub drained_to_abstention: u64,
    /// Explicit schema-drift invalidations
    /// ([`crate::ServeEngine::invalidate_db`] calls).
    pub db_invalidations: u64,
    /// Internal-invariant violations the engine absorbed instead of
    /// panicking (e.g. a dispatched ticket id with no ticket record).
    /// Always 0 in a healthy engine; nonzero means an accounting bug
    /// that was degraded, not a crash.
    pub invariant_breaches: u64,
}

/// Bounded sliding window of latency samples: a long-lived engine must
/// not grow a sample vector forever (8 bytes per request adds up at
/// production rates), and percentiles over the most recent window are
/// the operationally useful ones anyway. Overwrites oldest-first once
/// full; `snapshot` copies the samples out so the caller can summarize
/// them without holding the engine's lock.
#[derive(Debug)]
pub(crate) struct LatencyWindow {
    samples: Vec<f64>,
    next: usize,
    capacity: usize,
}

impl LatencyWindow {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "latency window needs room");
        Self {
            samples: Vec::new(),
            next: 0,
            capacity,
        }
    }

    pub fn push(&mut self, sample_ms: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push(sample_ms);
        } else {
            // rts-allow(panic): in this branch len == capacity and
            // next wraps modulo capacity, so the index is in bounds.
            self.samples[self.next] = sample_ms;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    pub fn snapshot(&self) -> Vec<f64> {
        self.samples.clone()
    }
}

/// Internal atomic counters the engine mutates from workers/clients.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub shed: AtomicU64,
    pub rejected: AtomicU64,
    pub rejected_quota: AtomicU64,
    pub feedback_rounds: AtomicU64,
    pub timed_out: AtomicU64,
    pub depth_max: AtomicUsize,
    pub depth_sum: AtomicU64,
    pub depth_samples: AtomicU64,
    pub parked_bytes: AtomicUsize,
    pub parked_bytes_peak: AtomicUsize,
    pub parked_sessions: AtomicUsize,
    pub parked_sessions_peak: AtomicUsize,
    pub checkpoints: AtomicU64,
    pub restores: AtomicU64,
    pub checkpoint_bytes: AtomicUsize,
    pub checkpoint_bytes_peak: AtomicUsize,
    pub panics_recovered: AtomicU64,
    pub panics_to_abstention: AtomicU64,
    pub corrupt_checkpoints_recovered: AtomicU64,
    pub context_build_fallbacks: AtomicU64,
    pub feedback_lost: AtomicU64,
    pub feedback_delayed: AtomicU64,
    pub drained_to_abstention: AtomicU64,
    pub db_invalidations: AtomicU64,
    pub invariant_breaches: AtomicU64,
}

impl Counters {
    pub fn note_depth(&self, depth: usize) {
        self.depth_max.fetch_max(depth, Ordering::Relaxed);
        self.depth_sum.fetch_add(depth as u64, Ordering::Relaxed);
        self.depth_samples.fetch_add(1, Ordering::Relaxed);
    }

    pub fn note_parked(&self, bytes: usize) {
        let cur = self.parked_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.parked_bytes_peak.fetch_max(cur, Ordering::Relaxed);
        let n = self.parked_sessions.fetch_add(1, Ordering::Relaxed) + 1;
        self.parked_sessions_peak.fetch_max(n, Ordering::Relaxed);
    }

    pub fn note_unparked(&self, bytes: usize) {
        self.parked_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.parked_sessions.fetch_sub(1, Ordering::Relaxed);
    }

    /// A parked session's live bytes were evicted into `bytes` of
    /// serialized checkpoint (the session count stays parked).
    pub fn note_checkpointed(&self, live_bytes: usize, bytes: usize) {
        self.parked_bytes.fetch_sub(live_bytes, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        let cur = self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.checkpoint_bytes_peak.fetch_max(cur, Ordering::Relaxed);
    }

    /// Record an absorbed internal-invariant violation: the engine hit
    /// a state that should be unreachable (see
    /// [`ServingStats::invariant_breaches`]) and degraded instead of
    /// panicking. `debug_assert!` still trips in debug builds so tests
    /// catch the accounting bug at its source.
    pub fn note_breach(&self) {
        self.invariant_breaches.fetch_add(1, Ordering::Relaxed);
    }

    /// A checkpointed session was re-synthesized on a worker.
    pub fn note_restored(&self, bytes: usize) {
        self.restores.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// A checkpoint was dropped without restoring (its ticket was shed
    /// past the deadline): the bytes leave the gauge, but nothing was
    /// re-synthesized so `restores` stays put.
    pub fn note_checkpoint_discarded(&self, bytes: usize) {
        self.checkpoint_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub fn depth_mean(&self) -> f64 {
        let n = self.depth_samples.load(Ordering::Relaxed);
        if n == 0 {
            0.0
        } else {
            self.depth_sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton_samples() {
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        let one = LatencySummary::from_samples(&[7.5]);
        assert_eq!(one.p50_ms, 7.5);
        assert_eq!(one.p99_ms, 7.5);
        assert_eq!(one.max_ms, 7.5);
    }

    #[test]
    fn latency_window_overwrites_oldest_at_capacity() {
        let mut w = LatencyWindow::new(3);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(v);
        }
        let mut snap = w.snapshot();
        snap.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(snap, vec![3.0, 4.0, 5.0], "oldest samples rotate out");
        assert_eq!(w.snapshot().len(), 3);
    }

    #[test]
    fn parked_accounting_tracks_peak_not_current() {
        let c = Counters::default();
        c.note_parked(100);
        c.note_parked(50);
        c.note_unparked(100);
        c.note_parked(20);
        assert_eq!(c.parked_bytes_peak.load(Ordering::Relaxed), 150);
        assert_eq!(c.parked_bytes.load(Ordering::Relaxed), 70);
        assert_eq!(c.parked_sessions_peak.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn checkpoint_accounting_moves_bytes_between_pools() {
        let c = Counters::default();
        c.note_parked(1000);
        // Evicted: live bytes leave the parked pool, 80 B of JSON enter
        // the checkpoint pool; the session itself stays parked.
        c.note_checkpointed(1000, 80);
        assert_eq!(c.parked_bytes.load(Ordering::Relaxed), 0);
        assert_eq!(c.parked_sessions.load(Ordering::Relaxed), 1);
        assert_eq!(c.checkpoint_bytes.load(Ordering::Relaxed), 80);
        assert_eq!(c.checkpoint_bytes_peak.load(Ordering::Relaxed), 80);
        // Restored on resume: checkpoint pool drains; the unpark bills
        // zero live bytes (they were already released at eviction).
        c.note_restored(80);
        c.note_unparked(0);
        assert_eq!(c.checkpoint_bytes.load(Ordering::Relaxed), 0);
        assert_eq!(c.parked_sessions.load(Ordering::Relaxed), 0);
        assert_eq!(c.checkpoints.load(Ordering::Relaxed), 1);
        assert_eq!(c.restores.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn discarded_checkpoints_drain_bytes_without_a_restore() {
        let c = Counters::default();
        c.note_parked(500);
        c.note_checkpointed(500, 64);
        // Shed past its deadline: bytes leave, no re-synthesis billed.
        c.note_checkpoint_discarded(64);
        assert_eq!(c.checkpoint_bytes.load(Ordering::Relaxed), 0);
        assert_eq!(c.restores.load(Ordering::Relaxed), 0);
        assert_eq!(c.checkpoints.load(Ordering::Relaxed), 1);
    }
}

//! `rts-served` — the standalone serving daemon.
//!
//! ```text
//! RTS_SCALE=0.03 cargo run --release -p rts-served
//! ```
//!
//! Rebuilds the deterministic corpus and trains the model artefacts
//! exactly like `serve_driver` (same `RTS_SCALE`/`RTS_SEED` recipe —
//! the wire submits instance *ids*, so client and server must agree on
//! what the ids mean; the `HelloAck` fingerprint guards that), then
//! fronts a [`rts_serve::ShardedEngine`] with the framed TCP protocol
//! of `PROTOCOL.md`.
//!
//! Knobs, beyond the `RTS_SERVE_*` engine set documented on
//! `serve_driver`:
//!
//! * `RTS_SERVED_ADDR` (default `127.0.0.1:7878`) — listen address;
//! * `RTS_SERVED_SHARDS` (default 1) — database shards;
//! * `RTS_THREADS` — worker threads per shard (as everywhere).
//!
//! The daemon exits 0 after a client sends `Shutdown` and every
//! connection has drained.

use rts_core::abstention::RtsConfig;
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_serve::wire::corpus_fingerprint;
use rts_serve::{ServeConfig, ShardedEngine, TenantQuota};
use rts_served::Server;
use simlm::{LinkTarget, SchemaLinker};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_ms(key: &str) -> Option<Duration> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|ms| Duration::from_secs_f64(ms / 1e3))
}

fn main() -> ExitCode {
    let scale: f64 = std::env::var("RTS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    let seed = rts_bench::env_seed();
    let addr = std::env::var("RTS_SERVED_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let shards = env_usize("RTS_SERVED_SHARDS", 1);

    // Bind before the (slow) training so a launcher that polls the
    // port learns "starting" from connection-refused → accepted-but-
    // slow-HelloAck rather than a long refusal window.
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[rts-served] cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("[rts-served] listening on {addr}; training artefacts…");

    let t0 = std::time::Instant::now();
    let bench = benchgen::BenchmarkProfile::bird_like()
        .scaled(scale)
        .generate(seed);
    let linker = SchemaLinker::new("bird", seed ^ 0x11CC);
    let probe_cfg = MbppConfig {
        probe: ProbeConfig {
            epochs: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let ds_t = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
    let ds_c = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Columns, 400);
    let mbpp_t = Mbpp::train(&ds_t, &probe_cfg);
    let mbpp_c = Mbpp::train(&ds_c, &probe_cfg);
    eprintln!(
        "[rts-served] setup (benchmark + mBPPs) in {:.1}s",
        t0.elapsed().as_secs_f64()
    );

    let config = ServeConfig {
        queue_capacity: env_usize("RTS_SERVE_QUEUE", 16),
        cache_capacity: env_usize("RTS_SERVE_CACHE", 8),
        quota: TenantQuota {
            max_in_flight: env_usize("RTS_SERVE_QUOTA", 0),
            max_parked: 0,
        },
        deadline: env_ms("RTS_SERVE_DEADLINE_MS"),
        feedback_timeout: env_ms("RTS_SERVE_FEEDBACK_TIMEOUT_MS"),
        parked_bytes_budget: env_usize("RTS_SERVE_PARKED_BUDGET", 0),
        rts: RtsConfig {
            seed,
            ..RtsConfig::default()
        },
        ..ServeConfig::default()
    };

    let fingerprint = corpus_fingerprint("bird", scale, seed, linker.corpus());
    let engine = Arc::new(ShardedEngine::with_artifacts(
        Arc::new(linker),
        Arc::new(mbpp_t),
        Arc::new(mbpp_c),
        bench.metas.iter().cloned().map(Arc::new).collect(),
        shards,
        config,
    ));
    // The whole corpus is addressable by id — which split a client
    // drives is its business, not the daemon's.
    let corpus = bench
        .split
        .train
        .iter()
        .chain(bench.split.dev.iter())
        .chain(bench.split.test.iter())
        .cloned();
    let server = Server::new(Arc::clone(&engine), fingerprint, corpus);

    eprintln!(
        "[rts-served] serving: {} shard(s), {} worker(s) total",
        shards,
        engine.workers_total()
    );
    let result = crossbeam::thread::scope(|s| {
        for i in 0..engine.workers_total() {
            let engine = &engine;
            s.spawn(move |_| engine.worker_loop(i));
        }
        server.serve(listener)
    });
    match result {
        Ok(Ok(())) => {
            eprintln!("[rts-served] drained; exiting");
            ExitCode::SUCCESS
        }
        Ok(Err(e)) => {
            eprintln!("[rts-served] accept loop failed: {e}");
            ExitCode::FAILURE
        }
        Err(_) => {
            eprintln!("[rts-served] worker scope panicked");
            ExitCode::FAILURE
        }
    }
}

//! `rts-served` — the standalone serving daemon: a TCP listener that
//! fronts any [`Engine`] with the framed wire protocol of
//! [`rts_serve::wire`] (see `PROTOCOL.md`).
//!
//! # Architecture
//!
//! One thread per connection reads frames and dispatches them against
//! the engine; one *writer* thread per connection drains the session's
//! outbox to the socket; one *watcher* thread per submitted request
//! forwards engine events ([`Engine::wait_event_changed`]) into the
//! outbox. The outbox belongs to the **session**, not the connection —
//! that asymmetry is the whole reconnect story:
//!
//! * a connection that drops (EOF, socket error, malformed frame)
//!   *parks* its session: tickets stay live in the engine, watchers
//!   keep appending events to the outbox, and feedback timeouts keep
//!   counting — a lapsed deadline still degrades the request to
//!   abstention exactly as if the client were attached;
//! * a client that reconnects with `Hello { resume }` re-attaches to
//!   the session by id: a fresh writer drains the accumulated outbox
//!   (pending feedback queries are re-pushed, so delivery is
//!   at-least-once and the client deduplicates by query identity), and
//!   the same request ids keep working;
//! * only a clean [`ClientMsg::Bye`] retires the session.
//!
//! Degrade-only applies at the wire too: malformed, truncated, or
//! oversized frames produce a best-effort typed [`ServerMsg::Fault`]
//! and a parked session — never a panic, never a wedged engine.
//!
//! # Shutdown
//!
//! [`ClientMsg::Shutdown`] calls [`Engine::shutdown`] (queued and
//! parked work completes, parked flags degrade to abstention) and stops
//! the accept loop; [`Server::serve`] returns once every connection
//! has closed, so the process exits only after each outcome was
//! deliverable.

use parking_lot::{Condvar, Mutex};
use rts_serve::wire::{read_frame, write_frame, ClientMsg, ServerMsg, WIRE_VERSION};
use rts_serve::{ClientEvent, Engine, EngineError};
use simlm::LinkTarget;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rts_core::session::FlagQuery;

/// How long the accept loop naps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// How long a tearing-down reader waits for the writer to flush a
/// final `Fault` before closing the socket under it.
const FAULT_FLUSH: Duration = Duration::from_millis(500);

/// One logical client session: the engine-side state that outlives any
/// single TCP connection.
struct Session<T> {
    conn_state: Mutex<ConnState<T>>,
    bell: Condvar,
}

struct ConnState<T> {
    /// Messages awaiting delivery, in push order. Survives disconnects.
    outbox: VecDeque<ServerMsg>,
    /// Live requests: submit request id → engine ticket.
    reqs: HashMap<u64, T>,
    /// The recorded ack (`Submitted` / `SubmitFailed`) for every
    /// request id ever submitted. A reconnecting client cannot know
    /// whether its first `Submit` arrived, so it re-sends — and the
    /// server *replays* the recorded ack instead of re-processing,
    /// making admission exactly-once per request id (a rejection is
    /// retried under a fresh id, never the same one).
    replies: HashMap<u64, ServerMsg>,
    /// The last unanswered feedback query pushed per request; re-pushed
    /// on resume so delivery is at-least-once across reconnects.
    pending: HashMap<u64, (LinkTarget, FlagQuery)>,
    /// Bumped by every (re)connect takeover; a writer whose epoch is
    /// stale exits, so at most one writer drains the outbox.
    epoch: u64,
    /// A clean `Bye` arrived: the session is done and will not resume.
    retired: bool,
}

impl<T> Session<T> {
    fn new() -> Self {
        Session {
            conn_state: Mutex::new(ConnState {
                outbox: VecDeque::new(),
                reqs: HashMap::new(),
                replies: HashMap::new(),
                pending: HashMap::new(),
                epoch: 0,
                retired: false,
            }),
            bell: Condvar::new(),
        }
    }

    fn push(&self, msg: ServerMsg) {
        let mut st = self.conn_state.lock();
        st.outbox.push_back(msg);
        self.bell.notify_all();
    }
}

struct Inner<E: Engine> {
    engine: Arc<E>,
    fingerprint: String,
    /// Instance corpus by id — the wire submits ids, not ASTs.
    corpus: HashMap<u64, benchgen::Instance>,
    sessions: Mutex<HashMap<u64, Arc<Session<E::Ticket>>>>,
    next_session: AtomicU64,
    draining: AtomicBool,
    conns: AtomicUsize,
}

/// The wire server: fronts one [`Engine`] (in practice a
/// [`rts_serve::ShardedEngine`], but any implementation works — the
/// daemon never sees past the trait).
pub struct Server<E: Engine + Send + Sync + 'static> {
    inner: Arc<Inner<E>>,
}

impl<E: Engine + Send + Sync + 'static> Clone for Server<E> {
    fn clone(&self) -> Self {
        Server {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<E: Engine + Send + Sync + 'static> Server<E> {
    /// Build a server over `engine`. `fingerprint` is the corpus
    /// recipe string (see [`rts_serve::wire::corpus_fingerprint`]);
    /// `corpus` is every instance clients may submit by id.
    pub fn new(
        engine: Arc<E>,
        fingerprint: String,
        corpus: impl IntoIterator<Item = benchgen::Instance>,
    ) -> Self {
        Server {
            inner: Arc::new(Inner {
                engine,
                fingerprint,
                corpus: corpus.into_iter().map(|i| (i.id, i)).collect(),
                sessions: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(1),
                draining: AtomicBool::new(false),
                conns: AtomicUsize::new(0),
            }),
        }
    }

    /// The engine behind the wire — the caller still owns its worker
    /// threads and may inspect it directly (tests do).
    pub fn engine(&self) -> &Arc<E> {
        &self.inner.engine
    }

    /// Ask the accept loop to wind down as if a client had sent
    /// [`ClientMsg::Shutdown`] (drains the engine too).
    pub fn begin_shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.engine.shutdown();
    }

    /// Accept connections until a [`ClientMsg::Shutdown`] has been
    /// received *and* every live connection has closed. Each
    /// connection gets a reader thread (this function's children) and
    /// a writer thread; request watchers are spawned per submit.
    pub fn serve(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // The listener is nonblocking; per-connection I/O
                    // must not be.
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    let inner = Arc::clone(&self.inner);
                    inner.conns.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        handle_conn(&inner, stream);
                        inner.conns.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.inner.draining.load(Ordering::SeqCst)
                        && self.inner.conns.load(Ordering::SeqCst) == 0
                    {
                        return Ok(());
                    }
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Write a frame, swallowing failures — used only where the connection
/// is already being torn down and the message is a courtesy.
fn best_effort<T: serde::Serialize>(stream: &mut TcpStream, msg: &T) {
    let _ = write_frame(stream, msg);
}

fn handle_conn<E: Engine + Send + Sync + 'static>(inner: &Arc<Inner<E>>, mut stream: TcpStream) {
    // ---- Handshake -------------------------------------------------
    let hello = match read_frame::<_, ClientMsg>(&mut stream) {
        Ok(Some(msg)) => msg,
        Ok(None) => return,
        Err(e) => {
            best_effort(&mut stream, &ServerMsg::Fault { error: e.into() });
            return;
        }
    };
    let (version, resume) = match hello {
        ClientMsg::Hello { version, resume } => (version, resume),
        _ => {
            best_effort(
                &mut stream,
                &ServerMsg::Fault {
                    error: EngineError::Protocol {
                        detail: "first frame must be Hello".to_string(),
                    },
                },
            );
            return;
        }
    };
    if version != WIRE_VERSION {
        best_effort(
            &mut stream,
            &ServerMsg::Fault {
                error: EngineError::Version {
                    server: WIRE_VERSION,
                    client: version,
                },
            },
        );
        return;
    }
    let (sid, session) = match resume {
        Some(id) => {
            let found = inner.sessions.lock().get(&id).cloned();
            match found {
                Some(s) => (id, s),
                None => {
                    best_effort(
                        &mut stream,
                        &ServerMsg::Fault {
                            error: EngineError::UnknownSession { session: id },
                        },
                    );
                    return;
                }
            }
        }
        None => {
            let id = inner.next_session.fetch_add(1, Ordering::SeqCst);
            let s: Arc<Session<E::Ticket>> = Arc::new(Session::new());
            inner.sessions.lock().insert(id, Arc::clone(&s));
            (id, s)
        }
    };

    // ---- Takeover --------------------------------------------------
    // Bump the epoch (any previous writer exits), ack the handshake,
    // and re-push every unanswered feedback query: the client may have
    // lost the original delivery with its old connection. Duplicates
    // are fine — the client resolves by query identity and a second
    // answer to a settled flag is a typed `Stale`.
    let my_epoch = {
        let mut st = session.conn_state.lock();
        st.epoch += 1;
        let mut reqs: Vec<u64> = st.pending.keys().copied().collect();
        reqs.sort_unstable();
        for req in reqs {
            if let Some((target, query)) = st.pending.get(&req) {
                let (target, query) = (*target, query.clone());
                st.outbox
                    .push_back(ServerMsg::NeedsFeedback { req, target, query });
            }
        }
        session.bell.notify_all();
        st.epoch
    };
    if write_frame(
        &mut stream,
        &ServerMsg::HelloAck {
            version: WIRE_VERSION,
            session: sid,
            fingerprint: inner.fingerprint.clone(),
        },
    )
    .is_err()
    {
        return;
    }
    let Ok(writer_stream) = stream.try_clone() else {
        return;
    };
    {
        let session = Arc::clone(&session);
        std::thread::spawn(move || writer_loop(&session, writer_stream, my_epoch));
    }

    // ---- Reader ----------------------------------------------------
    let mut retire = false;
    loop {
        match read_frame::<_, ClientMsg>(&mut stream) {
            Ok(Some(msg)) => {
                if let Flow::Close { retire: r } = dispatch(inner, &session, msg) {
                    retire = r;
                    break;
                }
            }
            // Clean disconnect: park the session for resume.
            Ok(None) => break,
            Err(e) => {
                // A hostile or broken peer reads as a typed fault; the
                // session parks (feedback timeouts keep running) and
                // the connection closes.
                session.push(ServerMsg::Fault { error: e.into() });
                flush_then_close(&session, my_epoch);
                break;
            }
        }
    }

    // ---- Teardown --------------------------------------------------
    {
        let mut st = session.conn_state.lock();
        if retire {
            st.retired = true;
        }
        if st.epoch == my_epoch {
            st.epoch += 1;
        }
        session.bell.notify_all();
    }
    if retire {
        inner.sessions.lock().remove(&sid);
    }
}

/// What the reader does after one dispatched message.
enum Flow {
    Continue,
    Close { retire: bool },
}

fn dispatch<E: Engine + Send + Sync + 'static>(
    inner: &Arc<Inner<E>>,
    session: &Arc<Session<E::Ticket>>,
    msg: ClientMsg,
) -> Flow {
    match msg {
        ClientMsg::Hello { .. } => {
            session.push(ServerMsg::Fault {
                error: EngineError::Protocol {
                    detail: "duplicate Hello on an established connection".to_string(),
                },
            });
            Flow::Close { retire: false }
        }
        ClientMsg::Submit {
            req,
            tenant,
            instance,
        } => {
            {
                let st = session.conn_state.lock();
                if let Some(recorded) = st.replies.get(&req) {
                    // A reconnecting client re-sent a Submit it could
                    // not confirm: replay the recorded ack, never
                    // re-process the admission.
                    let recorded = recorded.clone();
                    drop(st);
                    session.push(recorded);
                    return Flow::Continue;
                }
            }
            let (ack, watch) = match inner.corpus.get(&instance) {
                None => (
                    ServerMsg::SubmitFailed {
                        req,
                        error: EngineError::Submit(rts_serve::SubmitError::UnknownInstance {
                            instance,
                        }),
                    },
                    None,
                ),
                Some(inst) => match inner.engine.submit(tenant, inst) {
                    Ok(ticket) => {
                        session.conn_state.lock().reqs.insert(req, ticket);
                        (ServerMsg::Submitted { req }, Some(ticket))
                    }
                    Err(e) => (
                        ServerMsg::SubmitFailed {
                            req,
                            error: e.into(),
                        },
                        None,
                    ),
                },
            };
            {
                let mut st = session.conn_state.lock();
                st.replies.insert(req, ack.clone());
                st.outbox.push_back(ack);
                session.bell.notify_all();
            }
            // Watch only after the ack is queued, so the client never
            // sees an event for a request it has no ack for.
            if let Some(ticket) = watch {
                let inner = Arc::clone(inner);
                let session = Arc::clone(session);
                std::thread::spawn(move || watcher_loop(&inner, &session, req, ticket));
            }
            Flow::Continue
        }
        ClientMsg::Resolve {
            req,
            ticket,
            query,
            resolution,
        } => {
            let engine_ticket = session.conn_state.lock().reqs.get(&ticket).copied();
            let reply = match engine_ticket {
                None => ServerMsg::ResolveFailed {
                    req,
                    error: EngineError::Retired { ticket },
                },
                Some(t) => match inner.engine.resolve(t, &query, resolution) {
                    Ok(()) => ServerMsg::Resolved { req },
                    Err(e) => ServerMsg::ResolveFailed {
                        req,
                        error: e.into(),
                    },
                },
            };
            session.push(reply);
            Flow::Continue
        }
        ClientMsg::Stats { req } => {
            session.push(ServerMsg::Stats {
                req,
                stats: inner.engine.stats(),
            });
            Flow::Continue
        }
        ClientMsg::InvalidateDb { req, database } => {
            session.push(ServerMsg::Invalidated {
                req,
                dropped: inner.engine.invalidate_db(&database),
            });
            Flow::Continue
        }
        ClientMsg::SetTenantWeight { tenant, weight } => {
            inner.engine.set_tenant_weight(tenant, weight);
            Flow::Continue
        }
        ClientMsg::Shutdown => {
            inner.draining.store(true, Ordering::SeqCst);
            inner.engine.shutdown();
            Flow::Continue
        }
        ClientMsg::Bye => Flow::Close { retire: true },
    }
}

/// Wait (bounded) for the writer to drain the outbox — used to give a
/// final `Fault` a chance to reach the peer before the socket closes.
fn flush_then_close<T>(session: &Session<T>, my_epoch: u64) {
    let deadline = std::time::Instant::now() + FAULT_FLUSH;
    loop {
        {
            let st = session.conn_state.lock();
            if st.outbox.is_empty() || st.epoch != my_epoch {
                return;
            }
        }
        if std::time::Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Per-connection writer: drain the session outbox to the socket.
/// Writes happen *outside* the lock (a slow peer must not block
/// dispatch); a message is popped only after its write succeeded and
/// only while this writer still owns the connection epoch, so a
/// takeover mid-write re-sends rather than loses — delivery is
/// at-least-once, and the client deduplicates.
fn writer_loop<T>(session: &Session<T>, mut stream: TcpStream, my_epoch: u64) {
    loop {
        let msg = {
            let mut st = session.conn_state.lock();
            loop {
                if st.epoch != my_epoch {
                    return;
                }
                if let Some(front) = st.outbox.front() {
                    break front.clone();
                }
                if st.retired {
                    return;
                }
                session.bell.wait(&mut st);
            }
        };
        if write_frame(&mut stream, &msg).is_err() {
            // Connection died with the message still queued: it stays
            // in the outbox for the resuming writer.
            return;
        }
        let mut st = session.conn_state.lock();
        if st.epoch != my_epoch {
            return;
        }
        st.outbox.pop_front();
    }
}

/// Per-request watcher: forward every engine event for `ticket` into
/// the session outbox. Lives exactly as long as the request — across
/// disconnects — which is what makes a parked session's feedback
/// timeout deliverable after a resume.
fn watcher_loop<E: Engine>(
    inner: &Inner<E>,
    session: &Session<E::Ticket>,
    req: u64,
    ticket: E::Ticket,
) {
    let mut last: Option<FlagQuery> = None;
    loop {
        match inner.engine.wait_event_changed(ticket, last.as_ref()) {
            ClientEvent::NeedsFeedback { target, query } => {
                let mut st = session.conn_state.lock();
                st.pending.insert(req, (target, query.clone()));
                st.outbox.push_back(ServerMsg::NeedsFeedback {
                    req,
                    target,
                    query: query.clone(),
                });
                session.bell.notify_all();
                last = Some(query);
            }
            ClientEvent::Done(outcome) => {
                let mut st = session.conn_state.lock();
                st.pending.remove(&req);
                st.reqs.remove(&req);
                st.outbox.push_back(ServerMsg::Done {
                    req,
                    outcome: outcome.into(),
                });
                session.bell.notify_all();
                return;
            }
            ClientEvent::Retired => {
                let mut st = session.conn_state.lock();
                st.pending.remove(&req);
                st.reqs.remove(&req);
                st.outbox.push_back(ServerMsg::Retired { req });
                session.bell.notify_all();
                return;
            }
        }
    }
}

//! Wire robustness: the server must treat a hostile, broken, or
//! vanishing peer as a *protocol outcome* — typed faults, parked
//! sessions, lapsed deadlines degrading to abstention — never a panic
//! and never a wedged engine.

use rts_client::RtsClient;
use rts_core::abstention::MitigationPolicy;
use rts_core::bpp::{Mbpp, MbppConfig, ProbeConfig};
use rts_core::branching::BranchDataset;
use rts_core::human::{Expertise, HumanOracle};
use rts_core::session::resolve_flag;
use rts_serve::wire::{read_frame, write_frame, ClientMsg, ServerMsg, WIRE_VERSION};
use rts_serve::{ClientEvent, Engine, EngineError, ServeConfig, ServeEngine};
use rts_served::Server;
use simlm::{LinkTarget, SchemaLinker};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

struct Fx {
    bench: benchgen::Benchmark,
    model: SchemaLinker,
    mbpp_t: Mbpp,
    mbpp_c: Mbpp,
}

fn fixture() -> &'static Fx {
    static FX: OnceLock<Fx> = OnceLock::new();
    FX.get_or_init(|| {
        let bench = benchgen::BenchmarkProfile::bird_like()
            .scaled(0.02)
            .generate(77);
        let model = SchemaLinker::new("bird", 5);
        let cfg = MbppConfig {
            probe: ProbeConfig {
                epochs: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds_t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 150);
        let ds_c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 150);
        let mbpp_t = Mbpp::train(&ds_t, &cfg);
        let mbpp_c = Mbpp::train(&ds_c, &cfg);
        Fx {
            bench,
            model,
            mbpp_t,
            mbpp_c,
        }
    })
}

const FP: &str = "wire-robustness-fixture";

/// Stand up a server over a fresh engine on an ephemeral loopback
/// port. Returns the server handle, its address, and the threads to
/// join after [`stop`].
fn start_server(config: ServeConfig) -> (Server<ServeEngine>, String, Vec<JoinHandle<()>>) {
    let fx = fixture();
    let engine = Arc::new(ServeEngine::new(
        &fx.model,
        &fx.mbpp_t,
        &fx.mbpp_c,
        &fx.bench.metas,
        config,
    ));
    let server = Server::new(
        Arc::clone(&engine),
        FP.to_string(),
        fx.bench.split.dev.iter().cloned(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("loopback addr").to_string();
    let mut threads = Vec::new();
    for _ in 0..engine.config().workers {
        let engine = Arc::clone(&engine);
        threads.push(std::thread::spawn(move || engine.worker_loop()));
    }
    {
        let server = server.clone();
        threads.push(std::thread::spawn(move || {
            server.serve(listener).expect("serve drains cleanly");
        }));
    }
    (server, addr, threads)
}

fn stop(server: &Server<ServeEngine>, threads: Vec<JoinHandle<()>>) {
    server.begin_shutdown();
    for t in threads {
        t.join().expect("server thread panicked");
    }
}

/// Raw-socket helper: write `payload` as one frame (length prefix +
/// bytes, bypassing serialization) and read back one `ServerMsg`.
fn send_raw(stream: &mut TcpStream, payload: &[u8]) -> Option<ServerMsg> {
    let len = u32::try_from(payload.len()).expect("test payload fits");
    stream.write_all(&len.to_le_bytes()).expect("write prefix");
    stream.write_all(payload).expect("write payload");
    read_frame::<_, ServerMsg>(stream).expect("reply readable")
}

fn hello(stream: &mut TcpStream) {
    write_frame(
        stream,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
            resume: None,
        },
    )
    .expect("write hello");
    match read_frame::<_, ServerMsg>(stream).expect("handshake reply") {
        Some(ServerMsg::HelloAck { fingerprint, .. }) => assert_eq!(fingerprint, FP),
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

/// Every malformed, truncated, oversized, or out-of-order frame reads
/// back as a typed `Fault` (or a clean close), the connection dies,
/// and the server keeps serving well-formed clients afterwards.
#[test]
fn malformed_frames_fault_typed_never_panic() {
    let (server, addr, threads) = start_server(ServeConfig::default());

    // Garbage payload after a valid handshake → Protocol fault.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        hello(&mut s);
        match send_raw(&mut s, b"certainly not json") {
            Some(ServerMsg::Fault {
                error: EngineError::Protocol { .. },
            }) => {}
            other => panic!("expected Protocol fault, got {other:?}"),
        }
        // The server hangs up after a fault; the read sees EOF, not
        // a hang and not a reset-with-panic.
        assert!(matches!(read_frame::<_, ServerMsg>(&mut s), Ok(None)));
    }

    // Well-formed JSON of the wrong shape → Protocol fault too.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        hello(&mut s);
        match send_raw(&mut s, b"{\"NoSuchMessage\":{}}") {
            Some(ServerMsg::Fault {
                error: EngineError::Protocol { .. },
            }) => {}
            other => panic!("expected Protocol fault, got {other:?}"),
        }
    }

    // Oversized length prefix → refused before allocation, Protocol
    // fault on the wire.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        hello(&mut s);
        s.write_all(&u32::MAX.to_le_bytes()).expect("write prefix");
        s.write_all(&[0u8; 8]).expect("write filler");
        match read_frame::<_, ServerMsg>(&mut s).expect("reply readable") {
            Some(ServerMsg::Fault {
                error: EngineError::Protocol { .. },
            }) => {}
            other => panic!("expected Protocol fault, got {other:?}"),
        }
    }

    // Truncated frame (half a length prefix, then hangup): nothing to
    // reply to — the server must simply survive it.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        hello(&mut s);
        s.write_all(&[7u8, 0]).expect("write partial prefix");
        drop(s);
    }

    // First frame is not Hello → Protocol fault before any session.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        match send_raw(&mut s, b"{\"Shutdown\":null}") {
            Some(ServerMsg::Fault {
                error: EngineError::Protocol { .. },
            }) => {}
            other => panic!("expected Protocol fault, got {other:?}"),
        }
    }

    // Wrong protocol version → typed Version fault.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        write_frame(
            &mut s,
            &ClientMsg::Hello {
                version: WIRE_VERSION + 40,
                resume: None,
            },
        )
        .expect("write hello");
        match read_frame::<_, ServerMsg>(&mut s).expect("reply readable") {
            Some(ServerMsg::Fault {
                error: EngineError::Version { server, client },
            }) => {
                assert_eq!(server, WIRE_VERSION);
                assert_eq!(client, WIRE_VERSION + 40);
            }
            other => panic!("expected Version fault, got {other:?}"),
        }
    }

    // Resuming a session that never existed → typed UnknownSession.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        write_frame(
            &mut s,
            &ClientMsg::Hello {
                version: WIRE_VERSION,
                resume: Some(424_242),
            },
        )
        .expect("write hello");
        match read_frame::<_, ServerMsg>(&mut s).expect("reply readable") {
            Some(ServerMsg::Fault {
                error: EngineError::UnknownSession { session },
            }) => assert_eq!(session, 424_242),
            other => panic!("expected UnknownSession fault, got {other:?}"),
        }
    }

    // After all that abuse, a well-formed client still gets served.
    let fx = fixture();
    let oracle = HumanOracle::new(Expertise::Expert, 9);
    let policy = MitigationPolicy::Human(&oracle);
    let client = RtsClient::connect(&addr, Some(FP)).expect("handshake after abuse");
    let slice: Vec<benchgen::Instance> = fx.bench.split.dev.iter().take(2).cloned().collect();
    let served = rts_serve::drive_closed_loop(&client, 0, &slice, |inst, query| {
        Some(resolve_flag(&policy, inst, query))
    });
    assert_eq!(served.len(), slice.len(), "abuse must not wedge serving");
    client.bye();
    stop(&server, threads);
}

/// Walk instances until one suspends on feedback; return its ticket
/// and first query, completing the non-flagging ones along the way.
fn first_flagged(client: &RtsClient, fx: &Fx) -> (u64, rts_core::session::FlagQuery) {
    for inst in &fx.bench.split.dev {
        let ticket = client.submit(0, inst).expect("submit");
        match client.wait_event(ticket) {
            ClientEvent::NeedsFeedback { query, .. } => return (ticket, query),
            ClientEvent::Done(_) => continue,
            ClientEvent::Retired => panic!("ticket retired under a live client"),
        }
    }
    panic!("fixture workload never suspended on feedback");
}

/// Protocol-level resume, frame by frame: a client that *lost its
/// process* (no in-memory state at all) reconnects with the session
/// id, and the server re-delivers the unanswered feedback query under
/// the original request id — "resume by request id" is a property of
/// the wire, not of client-side caching.
#[test]
fn raw_resume_redelivers_pending_by_request_id() {
    let fx = fixture();
    let (server, addr, threads) = start_server(ServeConfig::default());
    let oracle = HumanOracle::new(Expertise::Expert, 9);
    let policy = MitigationPolicy::Human(&oracle);

    let mut s = TcpStream::connect(&addr).expect("connect");
    write_frame(
        &mut s,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
            resume: None,
        },
    )
    .expect("write hello");
    let session = match read_frame::<_, ServerMsg>(&mut s).expect("handshake reply") {
        Some(ServerMsg::HelloAck { session, .. }) => session,
        other => panic!("expected HelloAck, got {other:?}"),
    };

    // Submit until a request suspends on feedback.
    let mut flagged: Option<(u64, rts_core::session::FlagQuery)> = None;
    for (req, inst) in (1u64..).zip(fx.bench.split.dev.iter()) {
        write_frame(
            &mut s,
            &ClientMsg::Submit {
                req,
                tenant: 0,
                instance: inst.id,
            },
        )
        .expect("write submit");
        match read_frame::<_, ServerMsg>(&mut s).expect("ack readable") {
            Some(ServerMsg::Submitted { req: r }) => assert_eq!(r, req),
            other => panic!("expected Submitted, got {other:?}"),
        }
        match read_frame::<_, ServerMsg>(&mut s).expect("event readable") {
            Some(ServerMsg::NeedsFeedback { req: r, query, .. }) => {
                assert_eq!(r, req);
                flagged = Some((req, query));
                break;
            }
            Some(ServerMsg::Done { req: r, .. }) => assert_eq!(r, req),
            other => panic!("expected an event, got {other:?}"),
        }
    }
    let Some((req, query)) = flagged else {
        panic!("fixture workload never suspended on feedback");
    };

    // The process dies with the flag unanswered.
    drop(s);

    // A brand-new connection resumes the session: the server must
    // re-deliver the pending query under the *same* request id.
    let mut s2 = TcpStream::connect(&addr).expect("reconnect");
    write_frame(
        &mut s2,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
            resume: Some(session),
        },
    )
    .expect("write resume hello");
    match read_frame::<_, ServerMsg>(&mut s2).expect("resume reply") {
        Some(ServerMsg::HelloAck { session: sid, .. }) => assert_eq!(sid, session),
        other => panic!("expected HelloAck on resume, got {other:?}"),
    }
    match read_frame::<_, ServerMsg>(&mut s2).expect("re-push readable") {
        Some(ServerMsg::NeedsFeedback {
            req: r, query: q, ..
        }) => {
            assert_eq!(r, req, "pending flag must keep its request id");
            assert_eq!(q, query, "pending flag must be re-delivered verbatim");
        }
        other => panic!("expected the re-pushed flag, got {other:?}"),
    }

    // Answer through the resumed connection and drive to Done.
    let inst = fx
        .bench
        .split
        .dev
        .iter()
        .find(|i| i.id == query.instance)
        .expect("flagged instance is in the corpus");
    let mut next_resolve = 1_000u64;
    let mut pending = Some(query);
    let done = loop {
        if let Some(q) = pending.take() {
            write_frame(
                &mut s2,
                &ClientMsg::Resolve {
                    req: next_resolve,
                    ticket: req,
                    query: q.clone(),
                    resolution: resolve_flag(&policy, inst, &q),
                },
            )
            .expect("write resolve");
            next_resolve += 1;
        }
        match read_frame::<_, ServerMsg>(&mut s2).expect("event readable") {
            Some(ServerMsg::NeedsFeedback { req: r, query, .. }) => {
                assert_eq!(r, req);
                pending = Some(query);
            }
            Some(ServerMsg::Resolved { .. } | ServerMsg::ResolveFailed { .. }) => {}
            Some(ServerMsg::Done { req: r, outcome }) => {
                assert_eq!(r, req);
                break outcome;
            }
            other => panic!("expected protocol traffic, got {other:?}"),
        }
    };
    assert!(!done.timed_out, "no feedback timeout configured");
    write_frame(&mut s2, &ClientMsg::Bye).expect("write bye");
    drop(s2);
    stop(&server, threads);
}

/// A killed connection parks the session; reconnecting resumes it by
/// session id: the pending feedback query is re-delivered verbatim,
/// the same ticket accepts the answer, and the outcome is
/// byte-identical to the batch runtime — the drop changed *when* the
/// answer arrived, never what it was.
#[test]
fn kill_and_reconnect_mid_feedback_resumes() {
    let fx = fixture();
    let (server, addr, threads) = start_server(ServeConfig::default());
    let oracle = HumanOracle::new(Expertise::Expert, 9);
    let policy = MitigationPolicy::Human(&oracle);

    let client = RtsClient::connect(&addr, Some(FP)).expect("handshake");
    let session_before = client.session_id().expect("session granted");
    let (ticket, query) = first_flagged(&client, fx);

    // Kill the connection mid-feedback, as a network fault would.
    client.drop_connection();

    // The next wait transparently redials with `resume`; the server
    // re-pushes the unanswered query for the same ticket.
    let resumed = match client.wait_event(ticket) {
        ClientEvent::NeedsFeedback { query, .. } => query,
        other => panic!("expected the pending flag after resume, got {other:?}"),
    };
    assert_eq!(resumed, query, "resume must re-deliver the pending flag");
    assert_eq!(
        client.session_id(),
        Some(session_before),
        "reconnect must resume the same session, not mint a new one"
    );

    // Answer through the resumed connection and finish the request.
    let inst = fx
        .bench
        .split
        .dev
        .iter()
        .find(|i| i.id == query.instance)
        .expect("flagged instance is in the corpus");
    let done = loop {
        match client.wait_event(ticket) {
            ClientEvent::NeedsFeedback { query, .. } => {
                let _ = client.resolve(ticket, &query, resolve_flag(&policy, inst, &query));
            }
            ClientEvent::Done(done) => break done,
            ClientEvent::Retired => panic!("ticket retired mid-protocol"),
        }
    };
    assert!(!done.timed_out, "no feedback timeout configured");

    // The interrupted request still answers exactly like the batch
    // runtime.
    let contexts = rts_core::context::LinkContexts::build(&fx.bench);
    let mut scratch = rts_core::abstention::LinkScratch::default();
    let batch = rts_core::pipeline::run_joint_linking_in(
        &fx.model,
        &fx.mbpp_t,
        &fx.mbpp_c,
        inst,
        &fx.bench,
        &contexts,
        &policy,
        &rts_core::abstention::RtsConfig::default(),
        &mut scratch,
    );
    assert_eq!(
        format!("{:?}", done.outcome),
        format!("{batch:?}"),
        "reconnect changed the answer on instance {}",
        inst.id
    );
    client.bye();
    stop(&server, threads);
}

/// A feedback deadline that lapses *while the client is disconnected*
/// still degrades the request to abstention: the session parks, the
/// engine's clock keeps running, and the resumed client observes
/// `Done` with `timed_out` set — the request is never dropped and
/// never left hanging.
#[test]
fn feedback_timeout_lapses_while_disconnected() {
    let fx = fixture();
    let (server, addr, threads) = start_server(ServeConfig {
        feedback_timeout: Some(Duration::from_millis(50)),
        ..ServeConfig::default()
    });
    let oracle = HumanOracle::new(Expertise::Expert, 9);
    let policy = MitigationPolicy::Human(&oracle);

    let client = RtsClient::connect(&addr, Some(FP)).expect("handshake");
    let (ticket, _query) = first_flagged(&client, fx);

    // Vanish with the flag unanswered and stay away past the deadline.
    client.drop_connection();
    std::thread::sleep(Duration::from_millis(300));

    // Resume: the lapsed deadline must have resolved the flag to
    // abstention. (A cached or re-delivered stale query may surface
    // first; answering it reads `Stale` at worst and never revives
    // the request.)
    let done = loop {
        match client.wait_event(ticket) {
            ClientEvent::NeedsFeedback { query, .. } => {
                let inst = fx
                    .bench
                    .split
                    .dev
                    .iter()
                    .find(|i| i.id == query.instance)
                    .expect("flagged instance is in the corpus");
                let _ = client.resolve(ticket, &query, resolve_flag(&policy, inst, &query));
            }
            ClientEvent::Done(done) => break done,
            ClientEvent::Retired => panic!("timed-out ticket must complete, not retire"),
        }
    };
    assert!(done.timed_out, "the lapsed deadline must mark the outcome");
    assert!(
        done.outcome.abstained(),
        "degrade-only: a feedback timeout abstains, it never answers"
    );
    client.bye();
    stop(&server, threads);
}

//! # simlm — a deterministic transparent-box LLM simulator
//!
//! The RTS paper instruments a supervised fine-tuned Deepseek-7B: it
//! watches each generated token's **per-layer hidden states** to detect
//! branching points, exploits **constrained decoding** over schema
//! tokens, and relies on **teacher forcing** to label branching points
//! against ground truth (§2.3, §3.1). Running a 7B model is outside this
//! reproduction's budget, so `simlm` simulates the *observable interface*
//! of that fine-tuned model:
//!
//! * [`vocab`] — a subword tokenizer over schema identifiers
//!   (`lapTimes` → `lap·Times`) and the special tokens of the linking
//!   answer format;
//! * [`trie`] — the constrained-decoding trie restricting generation to
//!   valid schema-element token sequences;
//! * [`linearize`] — gold answers as token streams (`tables : races ,
//!   lapTimes ;`) and the inverse `decode` used by the paper's
//!   Algorithm 2;
//! * [`model`] — the generator itself. Its error process is driven by
//!   the workload's per-link confusion sets and instance hardness,
//!   calibrated per benchmark ([`profile`]) to the paper's Table 2
//!   operating points. Every emitted token carries:
//!     - an **over-confident softmax probability** (concentrated near 1
//!       for correct *and* incorrect tokens — Figure 3a),
//!     - a stack of `n_layers` hidden-state vectors in which a latent
//!       *branching-risk direction* is embedded with layer-dependent
//!       gain (mid-depth layers most informative). Probes must genuinely
//!       learn this direction from data; nothing reveals labels at
//!       inference time.
//!
//! Decisions (link correctly / substitute a confusable / omit / add
//! spurious) are drawn deterministically from the model seed and the
//! instance identity, so a free-running generation and a teacher-forced
//! replay of the same instance agree on *what the model would have
//! done* — exactly the property TAR/FAR measurement needs.

pub mod linearize;
pub mod model;
pub mod profile;
pub mod trie;
pub mod vocab;

pub use linearize::{decode_elements, linearize_columns, linearize_tables, IncrementalDecoder};
pub use model::{
    CorpusVersion, Decision, GenMode, GenerationTrace, HiddenStack, LayerSet, LinkTarget,
    SchemaLinker, StepTrace, SynthScratch,
};
pub use profile::CompetenceProfile;
pub use trie::Trie;
pub use vocab::{TokenId, Vocab};

//! Answer linearization and decoding.
//!
//! The schema-linking model's answer is a token stream:
//!
//! ```text
//! tables : races , lapTimes ;
//! columns : lapTimes . lap , lapTimes . time , races . name ;
//! ```
//!
//! Elements appear in canonical (sorted) order — the order the gold
//! annotations are stored in — so teacher-forced comparison against the
//! gold stream is positional. `decode_elements` is the paper's `decode`:
//! it folds a token stream back into the set of complete element names,
//! tolerating a trailing partial element (returned separately, since
//! Algorithm 2 needs to complete it).

use crate::vocab::{
    TokenId, Vocab, TOK_COLON, TOK_COLUMNS, TOK_COMMA, TOK_DOT, TOK_END, TOK_TABLES,
};

/// Tokenize one element name. Table elements are identifiers; column
/// elements are `table.column` (the dot becomes its own token).
pub fn element_tokens(vocab: &mut Vocab, element: &str) -> Vec<TokenId> {
    match element.split_once('.') {
        Some((t, c)) => {
            let mut out = vocab.encode_identifier(t);
            out.push(vocab.intern(TOK_DOT));
            out.extend(vocab.encode_identifier(c));
            out
        }
        None => vocab.encode_identifier(element),
    }
}

fn linearize(vocab: &mut Vocab, header: &str, elements: &[String]) -> Vec<TokenId> {
    let mut out = Vec::with_capacity(2 + elements.len() * 4);
    out.push(vocab.intern(header));
    out.push(vocab.intern(TOK_COLON));
    for (i, e) in elements.iter().enumerate() {
        if i > 0 {
            out.push(vocab.intern(TOK_COMMA));
        }
        out.extend(element_tokens(vocab, e));
    }
    out.push(vocab.intern(TOK_END));
    out
}

/// `tables : t1 , t2 ;`
pub fn linearize_tables(vocab: &mut Vocab, tables: &[String]) -> Vec<TokenId> {
    linearize(vocab, TOK_TABLES, tables)
}

/// `columns : t1 . c1 , t2 . c2 ;` — input pairs `(table, column)`.
pub fn linearize_columns(vocab: &mut Vocab, columns: &[(String, String)]) -> Vec<TokenId> {
    let elements: Vec<String> = columns.iter().map(|(t, c)| format!("{t}.{c}")).collect();
    linearize(vocab, TOK_COLUMNS, &elements)
}

/// Decode a token stream into complete element names plus the trailing
/// partial element's tokens (empty when the stream ends cleanly).
///
/// The stream may or may not include the `header :` prefix and the
/// terminating `;` — Algorithm 2 calls decode on arbitrary prefixes.
pub fn decode_elements(vocab: &Vocab, tokens: &[TokenId]) -> (Vec<String>, Vec<TokenId>) {
    let comma = vocab.get(TOK_COMMA);
    let end = vocab.get(TOK_END);
    let colon = vocab.get(TOK_COLON);
    let header_tables = vocab.get(TOK_TABLES);
    let header_columns = vocab.get(TOK_COLUMNS);

    let mut elements = Vec::new();
    let mut current: Vec<TokenId> = Vec::new();
    let mut iter = tokens.iter().copied().peekable();

    // Optional header.
    if let Some(&first) = tokens.first() {
        if Some(first) == header_tables || Some(first) == header_columns {
            iter.next();
            if iter.peek().copied() == colon {
                iter.next();
            }
        }
    }

    for t in iter {
        if Some(t) == comma || Some(t) == end {
            if !current.is_empty() {
                elements.push(vocab.concat(&current));
                current.clear();
            }
            continue;
        }
        if Some(t) == colon {
            continue; // stray colon (robustness)
        }
        current.push(t);
    }
    (elements, current)
}

/// Streaming [`decode_elements`]: push one token at a time and read the
/// complete elements / trailing partial so far. After `k` pushes the
/// state equals `decode_elements(vocab, &tokens[..k])` exactly — which
/// is what lets Algorithm 2's trace back consume a stream token by
/// token instead of re-decoding the whole prefix on every step (the
/// former path was quadratic in the stream length).
#[derive(Debug)]
pub struct IncrementalDecoder<'a> {
    vocab: &'a Vocab,
    /// Special-token ids, resolved once (`None` = not in this vocab).
    comma: Option<TokenId>,
    end: Option<TokenId>,
    colon: Option<TokenId>,
    header_tables: Option<TokenId>,
    header_columns: Option<TokenId>,
    /// Tokens consumed so far (drives the position-0 header skip).
    n_seen: usize,
    elements: Vec<String>,
    partial: Vec<TokenId>,
}

impl<'a> IncrementalDecoder<'a> {
    pub fn new(vocab: &'a Vocab) -> Self {
        Self {
            vocab,
            comma: vocab.get(TOK_COMMA),
            end: vocab.get(TOK_END),
            colon: vocab.get(TOK_COLON),
            header_tables: vocab.get(TOK_TABLES),
            header_columns: vocab.get(TOK_COLUMNS),
            n_seen: 0,
            elements: Vec::new(),
            partial: Vec::new(),
        }
    }

    /// Consume the next token of the stream.
    pub fn push(&mut self, t: TokenId) {
        let first = self.n_seen == 0;
        self.n_seen += 1;
        if first && (Some(t) == self.header_tables || Some(t) == self.header_columns) {
            // A position-0 header is dropped; a header token anywhere
            // else is ordinary content, exactly like the batch decoder.
            return;
        }
        if Some(t) == self.colon {
            // The header colon and stray colons are both dropped.
            return;
        }
        if Some(t) == self.comma || Some(t) == self.end {
            if !self.partial.is_empty() {
                self.elements.push(self.vocab.concat(&self.partial));
                self.partial.clear();
            }
            return;
        }
        self.partial.push(t);
    }

    /// Complete elements decoded so far (in stream order).
    pub fn elements(&self) -> &[String] {
        &self.elements
    }

    /// Trailing partial element's tokens (empty at a clean boundary).
    pub fn partial(&self) -> &[TokenId] {
        &self.partial
    }

    /// Number of tokens consumed.
    pub fn n_seen(&self) -> usize {
        self.n_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_roundtrip() {
        let mut v = Vocab::new();
        let tables = vec!["lapTimes".to_string(), "races".to_string()];
        let toks = linearize_tables(&mut v, &tables);
        let (decoded, partial) = decode_elements(&v, &toks);
        assert_eq!(decoded, tables);
        assert!(partial.is_empty());
    }

    #[test]
    fn columns_roundtrip() {
        let mut v = Vocab::new();
        let cols = vec![
            ("lapTimes".to_string(), "time".to_string()),
            ("races".to_string(), "name".to_string()),
        ];
        let toks = linearize_columns(&mut v, &cols);
        let (decoded, partial) = decode_elements(&v, &toks);
        assert_eq!(decoded, vec!["lapTimes.time", "races.name"]);
        assert!(partial.is_empty());
    }

    #[test]
    fn decode_handles_partial_suffix() {
        let mut v = Vocab::new();
        let tables = vec!["lapTimes".to_string(), "raceDays".to_string()];
        let toks = linearize_tables(&mut v, &tables);
        // Drop the final ";" and the trailing "Days" token: the stream
        // ends mid-element with the bare "race" subword.
        let cut = &toks[..toks.len() - 2];
        let (decoded, partial) = decode_elements(&v, cut);
        assert_eq!(decoded, vec!["lapTimes"]);
        assert_eq!(v.concat(&partial), "race");
    }

    #[test]
    fn decode_without_header() {
        let mut v = Vocab::new();
        let ids = element_tokens(&mut v, "races");
        let (decoded, partial) = decode_elements(&v, &ids);
        assert!(decoded.is_empty(), "no separator yet → still partial");
        assert_eq!(v.concat(&partial), "races");
    }

    #[test]
    fn empty_list_linearizes_to_header_and_end() {
        let mut v = Vocab::new();
        let toks = linearize_tables(&mut v, &[]);
        let (decoded, partial) = decode_elements(&v, &toks);
        assert!(decoded.is_empty());
        assert!(partial.is_empty());
        assert_eq!(toks.len(), 3); // tables : ;
    }

    #[test]
    fn column_elements_tokenize_with_dot() {
        let mut v = Vocab::new();
        let ids = element_tokens(&mut v, "lapTimes.raceId");
        let texts: Vec<&str> = ids.iter().map(|&i| v.text(i)).collect();
        assert_eq!(texts, vec!["lap", "Times", ".", "race", "Id"]);
    }

    #[test]
    fn incremental_decoder_matches_batch_on_every_prefix() {
        let mut v = Vocab::new();
        let cols = vec![
            ("lapTimes".to_string(), "time".to_string()),
            ("races".to_string(), "name".to_string()),
            ("races".to_string(), "raceId".to_string()),
        ];
        let toks = linearize_columns(&mut v, &cols);
        let mut dec = IncrementalDecoder::new(&v);
        for (k, &t) in toks.iter().enumerate() {
            dec.push(t);
            let (batch_elems, batch_partial) = decode_elements(&v, &toks[..k + 1]);
            assert_eq!(dec.elements(), &batch_elems[..], "prefix {}", k + 1);
            assert_eq!(dec.partial(), &batch_partial[..], "prefix {}", k + 1);
            assert_eq!(dec.n_seen(), k + 1);
        }
    }

    #[test]
    fn incremental_decoder_treats_late_header_as_content() {
        // A header token beyond position 0 is ordinary content in the
        // batch decoder; the streaming decoder must agree.
        let mut v = Vocab::new();
        let races = v.encode_identifier("races");
        let header = v.get(TOK_TABLES).unwrap();
        let comma = v.get(TOK_COMMA).unwrap();
        let stream: Vec<TokenId> = races
            .iter()
            .copied()
            .chain([comma, header, comma])
            .collect();
        let (batch, _) = decode_elements(&v, &stream);
        let mut dec = IncrementalDecoder::new(&v);
        for &t in &stream {
            dec.push(t);
        }
        assert_eq!(dec.elements(), &batch[..]);
        assert_eq!(batch, vec!["races".to_string(), TOK_TABLES.to_string()]);
    }
}

//! Answer linearization and decoding.
//!
//! The schema-linking model's answer is a token stream:
//!
//! ```text
//! tables : races , lapTimes ;
//! columns : lapTimes . lap , lapTimes . time , races . name ;
//! ```
//!
//! Elements appear in canonical (sorted) order — the order the gold
//! annotations are stored in — so teacher-forced comparison against the
//! gold stream is positional. `decode_elements` is the paper's `decode`:
//! it folds a token stream back into the set of complete element names,
//! tolerating a trailing partial element (returned separately, since
//! Algorithm 2 needs to complete it).

use crate::vocab::{
    TokenId, Vocab, TOK_COLON, TOK_COLUMNS, TOK_COMMA, TOK_DOT, TOK_END, TOK_TABLES,
};

/// Tokenize one element name. Table elements are identifiers; column
/// elements are `table.column` (the dot becomes its own token).
pub fn element_tokens(vocab: &mut Vocab, element: &str) -> Vec<TokenId> {
    match element.split_once('.') {
        Some((t, c)) => {
            let mut out = vocab.encode_identifier(t);
            out.push(vocab.intern(TOK_DOT));
            out.extend(vocab.encode_identifier(c));
            out
        }
        None => vocab.encode_identifier(element),
    }
}

fn linearize(vocab: &mut Vocab, header: &str, elements: &[String]) -> Vec<TokenId> {
    let mut out = Vec::with_capacity(2 + elements.len() * 4);
    out.push(vocab.intern(header));
    out.push(vocab.intern(TOK_COLON));
    for (i, e) in elements.iter().enumerate() {
        if i > 0 {
            out.push(vocab.intern(TOK_COMMA));
        }
        out.extend(element_tokens(vocab, e));
    }
    out.push(vocab.intern(TOK_END));
    out
}

/// `tables : t1 , t2 ;`
pub fn linearize_tables(vocab: &mut Vocab, tables: &[String]) -> Vec<TokenId> {
    linearize(vocab, TOK_TABLES, tables)
}

/// `columns : t1 . c1 , t2 . c2 ;` — input pairs `(table, column)`.
pub fn linearize_columns(vocab: &mut Vocab, columns: &[(String, String)]) -> Vec<TokenId> {
    let elements: Vec<String> = columns.iter().map(|(t, c)| format!("{t}.{c}")).collect();
    linearize(vocab, TOK_COLUMNS, &elements)
}

/// Decode a token stream into complete element names plus the trailing
/// partial element's tokens (empty when the stream ends cleanly).
///
/// The stream may or may not include the `header :` prefix and the
/// terminating `;` — Algorithm 2 calls decode on arbitrary prefixes.
pub fn decode_elements(vocab: &Vocab, tokens: &[TokenId]) -> (Vec<String>, Vec<TokenId>) {
    let comma = vocab.get(TOK_COMMA);
    let end = vocab.get(TOK_END);
    let colon = vocab.get(TOK_COLON);
    let header_tables = vocab.get(TOK_TABLES);
    let header_columns = vocab.get(TOK_COLUMNS);

    let mut elements = Vec::new();
    let mut current: Vec<TokenId> = Vec::new();
    let mut iter = tokens.iter().copied().peekable();

    // Optional header.
    if let Some(&first) = tokens.first() {
        if Some(first) == header_tables || Some(first) == header_columns {
            iter.next();
            if iter.peek().copied() == colon {
                iter.next();
            }
        }
    }

    for t in iter {
        if Some(t) == comma || Some(t) == end {
            if !current.is_empty() {
                elements.push(vocab.concat(&current));
                current.clear();
            }
            continue;
        }
        if Some(t) == colon {
            continue; // stray colon (robustness)
        }
        current.push(t);
    }
    (elements, current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_roundtrip() {
        let mut v = Vocab::new();
        let tables = vec!["lapTimes".to_string(), "races".to_string()];
        let toks = linearize_tables(&mut v, &tables);
        let (decoded, partial) = decode_elements(&v, &toks);
        assert_eq!(decoded, tables);
        assert!(partial.is_empty());
    }

    #[test]
    fn columns_roundtrip() {
        let mut v = Vocab::new();
        let cols = vec![
            ("lapTimes".to_string(), "time".to_string()),
            ("races".to_string(), "name".to_string()),
        ];
        let toks = linearize_columns(&mut v, &cols);
        let (decoded, partial) = decode_elements(&v, &toks);
        assert_eq!(decoded, vec!["lapTimes.time", "races.name"]);
        assert!(partial.is_empty());
    }

    #[test]
    fn decode_handles_partial_suffix() {
        let mut v = Vocab::new();
        let tables = vec!["lapTimes".to_string(), "raceDays".to_string()];
        let toks = linearize_tables(&mut v, &tables);
        // Drop the final ";" and the trailing "Days" token: the stream
        // ends mid-element with the bare "race" subword.
        let cut = &toks[..toks.len() - 2];
        let (decoded, partial) = decode_elements(&v, cut);
        assert_eq!(decoded, vec!["lapTimes"]);
        assert_eq!(v.concat(&partial), "race");
    }

    #[test]
    fn decode_without_header() {
        let mut v = Vocab::new();
        let ids = element_tokens(&mut v, "races");
        let (decoded, partial) = decode_elements(&v, &ids);
        assert!(decoded.is_empty(), "no separator yet → still partial");
        assert_eq!(v.concat(&partial), "races");
    }

    #[test]
    fn empty_list_linearizes_to_header_and_end() {
        let mut v = Vocab::new();
        let toks = linearize_tables(&mut v, &[]);
        let (decoded, partial) = decode_elements(&v, &toks);
        assert!(decoded.is_empty());
        assert!(partial.is_empty());
        assert_eq!(toks.len(), 3); // tables : ;
    }

    #[test]
    fn column_elements_tokenize_with_dot() {
        let mut v = Vocab::new();
        let ids = element_tokens(&mut v, "lapTimes.raceId");
        let texts: Vec<&str> = ids.iter().map(|&i| v.text(i)).collect();
        assert_eq!(texts, vec!["lap", "Times", ".", "race", "Id"]);
    }
}

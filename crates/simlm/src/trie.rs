//! Constrained-decoding trie.
//!
//! The paper constrains token-level generation so that only tokens
//! forming valid schema-element names are generable (§2.3, citing
//! guided-decoding work). The trie stores every candidate element's
//! token sequence; at any prefix it answers "which tokens may come
//! next?" and "which element does this complete path denote?" — the
//! second question also powers Algorithm 2's continuation step
//! ("request that the model continues generation until a next table is
//! identified by decode").

use crate::vocab::TokenId;
use std::collections::HashMap;

/// A node in the trie.
#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<TokenId, usize>,
    /// Index into `Trie::names` when a full element terminates here.
    terminal: Option<usize>,
}

/// Token-sequence trie over schema-element names.
#[derive(Debug, Clone)]
pub struct Trie {
    nodes: Vec<Node>,
    names: Vec<String>,
}

impl Default for Trie {
    fn default() -> Self {
        Self::new()
    }
}

impl Trie {
    pub fn new() -> Self {
        Trie {
            nodes: vec![Node::default()],
            names: Vec::new(),
        }
    }

    /// Insert an element with its token sequence. Duplicate inserts of
    /// the same name are idempotent.
    pub fn insert(&mut self, name: &str, tokens: &[TokenId]) {
        assert!(!tokens.is_empty(), "cannot insert empty token sequence");
        let mut cur = 0usize;
        for &t in tokens {
            let next = match self.nodes[cur].children.get(&t) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(t, n);
                    n
                }
            };
            cur = next;
        }
        if let Some(existing) = self.nodes[cur].terminal {
            debug_assert_eq!(self.names[existing], name, "token collision between names");
            return;
        }
        self.nodes[cur].terminal = Some(self.names.len());
        self.names.push(name.to_string());
    }

    /// Number of stored element names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Walk a token prefix from the root; `None` if the prefix leaves
    /// the trie.
    fn walk(&self, prefix: &[TokenId]) -> Option<usize> {
        let mut cur = 0usize;
        for t in prefix {
            cur = *self.nodes[cur].children.get(t)?;
        }
        Some(cur)
    }

    /// Tokens allowed after `prefix` (the constrained-decoding mask).
    pub fn allowed_next(&self, prefix: &[TokenId]) -> Vec<TokenId> {
        match self.walk(prefix) {
            Some(n) => {
                // rts-allow(iter-order): sorted immediately below, so
                // the mask is order-stable.
                let mut toks: Vec<TokenId> = self.nodes[n].children.keys().copied().collect();
                toks.sort_unstable();
                toks
            }
            None => Vec::new(),
        }
    }

    /// Does `prefix` exactly spell a stored element? Returns its name.
    pub fn complete(&self, prefix: &[TokenId]) -> Option<&str> {
        self.walk(prefix)
            .and_then(|n| self.nodes[n].terminal)
            .map(|i| self.names[i].as_str())
    }

    /// Is `prefix` a (strict or complete) prefix of some stored element?
    pub fn is_prefix(&self, prefix: &[TokenId]) -> bool {
        self.walk(prefix).is_some()
    }

    /// Deterministically complete `prefix` to the lexicographically
    /// smallest stored element extending it — Algorithm 2's "continue
    /// generation until the next table is identified".
    pub fn cheapest_completion(&self, prefix: &[TokenId]) -> Option<(Vec<TokenId>, &str)> {
        let mut cur = self.walk(prefix)?;
        let mut suffix = Vec::new();
        loop {
            if let Some(name_idx) = self.nodes[cur].terminal {
                return Some((suffix, self.names[name_idx].as_str()));
            }
            // Smallest token id first for determinism.
            // rts-allow(iter-order): min_by_key over the unique
            // smallest token id is independent of iteration order.
            let (&t, &next) = self.nodes[cur].children.iter().min_by_key(|(&t, _)| t)?;
            suffix.push(t);
            cur = next;
        }
    }

    /// All stored names (insertion order).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Build a trie over a fixed set of element names, tokenizing (and
    /// interning) each one in `vocab`. This is the construction the
    /// shared `LinkContext` uses: the candidate set is known up front
    /// (the database schema), so the trie — and the vocabulary it is
    /// keyed in — can be built once and reused read-only across
    /// instances, rounds and threads.
    pub fn from_elements<S: AsRef<str>>(
        vocab: &mut crate::vocab::Vocab,
        names: impl IntoIterator<Item = S>,
    ) -> Trie {
        let mut trie = Trie::new();
        for name in names {
            let name = name.as_ref();
            let toks = crate::linearize::element_tokens(vocab, name);
            trie.insert(name, &toks);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    fn build() -> (Vocab, Trie) {
        let mut v = Vocab::new();
        let mut t = Trie::new();
        for name in ["races", "raceId", "raceDays", "lapTimes", "results"] {
            let ids = v.encode_identifier(name);
            t.insert(name, &ids);
        }
        (v, t)
    }

    #[test]
    fn shared_prefixes_fork() {
        let (v, t) = build();
        // "raceId" → [race, Id]; "raceDays" → [race, Days]: after [race]
        // both continuations are allowed. ("races" is a single lowercase
        // token, so it does not share this prefix.)
        let race = v.get("race").unwrap();
        let next = t.allowed_next(&[race]);
        assert_eq!(next.len(), 2);
        let texts: Vec<&str> = next.iter().map(|&id| v.text(id)).collect();
        assert!(texts.contains(&"Days") && texts.contains(&"Id"));
    }

    #[test]
    fn complete_identifies_elements() {
        let (v, t) = build();
        let ids = v.try_encode_identifier("lapTimes").unwrap();
        assert_eq!(t.complete(&ids), Some("lapTimes"));
        assert_eq!(t.complete(&ids[..1]), None, "strict prefix is not complete");
    }

    #[test]
    fn allowed_next_from_root_covers_first_tokens() {
        let (v, t) = build();
        let roots = t.allowed_next(&[]);
        let texts: Vec<&str> = roots.iter().map(|&id| v.text(id)).collect();
        assert!(texts.contains(&"race"));
        assert!(texts.contains(&"lap"));
        assert!(texts.contains(&"results"));
    }

    #[test]
    fn invalid_prefix_has_no_continuations() {
        let (mut v, t) = build();
        let bogus = v.intern("bogus");
        assert!(t.allowed_next(&[bogus]).is_empty());
        assert!(!t.is_prefix(&[bogus]));
    }

    #[test]
    fn cheapest_completion_finishes_partial_names() {
        let (v, t) = build();
        let race = v.get("race").unwrap();
        let (suffix, name) = t.cheapest_completion(&[race]).unwrap();
        // Either "races" or "raceId" depending on token id order; the
        // point is determinism and validity.
        assert!(name == "races" || name == "raceId");
        let mut full = vec![race];
        full.extend(&suffix);
        assert_eq!(t.complete(&full), Some(name));
        // Deterministic across calls.
        let again = t.cheapest_completion(&[race]).unwrap();
        assert_eq!(again.1, name);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let (mut v, mut t) = build();
        let ids = v.encode_identifier("races");
        t.insert("races", &ids);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn from_elements_matches_incremental_build() {
        let names = ["races", "raceId", "raceDays", "lapTimes", "results"];
        let (v_ref, t_ref) = build();
        let mut v = Vocab::new();
        let t = Trie::from_elements(&mut v, names);
        assert_eq!(t.len(), t_ref.len());
        for name in names {
            let ids = v.try_encode_identifier(name).unwrap();
            assert_eq!(t.complete(&ids), Some(name));
            let ids_ref = v_ref.try_encode_identifier(name).unwrap();
            assert_eq!(t_ref.complete(&ids_ref), Some(name));
        }
    }
}

//! Subword vocabulary and identifier tokenizer.
//!
//! Schema identifiers are split at underscores and camelCase boundaries:
//! `lapTimes` → `lap·Times`, `operations_type` → `operations·_·type`,
//! `raceId` → `race·Id`. Concatenating a token run reproduces the
//! identifier exactly, which is what the `decode` function of the
//! paper's Algorithm 2 relies on.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Token identifier (index into a [`Vocab`]).
pub type TokenId = u32;

/// Special tokens of the linking-answer format.
pub const TOK_TABLES: &str = "tables";
pub const TOK_COLUMNS: &str = "columns";
pub const TOK_COLON: &str = ":";
pub const TOK_COMMA: &str = ",";
pub const TOK_DOT: &str = ".";
pub const TOK_END: &str = ";";

/// Split an identifier into subword tokens.
///
/// Boundaries: before every underscore, after every underscore, and at
/// lower→upper camelCase transitions. Digits stick to the preceding
/// fragment.
pub fn split_identifier(ident: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for ch in ident.chars() {
        if ch == '_' {
            if !current.is_empty() {
                out.push(std::mem::take(&mut current));
            }
            out.push("_".to_string());
            prev_lower = false;
        } else if ch.is_ascii_uppercase() && prev_lower {
            out.push(std::mem::take(&mut current));
            current.push(ch);
            prev_lower = false;
        } else {
            prev_lower = ch.is_ascii_lowercase() || ch.is_ascii_digit();
            current.push(ch);
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// A token vocabulary: interned strings with stable ids. Built per
/// database from its schema identifiers plus the format specials.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, TokenId>,
}

impl Vocab {
    /// Empty vocabulary containing only the format specials.
    pub fn new() -> Self {
        let mut v = Vocab {
            tokens: Vec::new(),
            index: HashMap::new(),
        };
        for s in [
            TOK_TABLES,
            TOK_COLUMNS,
            TOK_COLON,
            TOK_COMMA,
            TOK_DOT,
            TOK_END,
        ] {
            v.intern(s);
        }
        v
    }

    /// Build a vocabulary covering every identifier of a database.
    pub fn for_database(db: &nanosql::Database) -> Self {
        let mut v = Vocab::new();
        for t in db.tables() {
            for piece in split_identifier(&t.name) {
                v.intern(&piece);
            }
            for c in &t.columns {
                for piece in split_identifier(&c.name) {
                    v.intern(&piece);
                }
            }
        }
        v
    }

    /// Intern a token string, returning its id.
    pub fn intern(&mut self, s: &str) -> TokenId {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.tokens.len() as TokenId;
        self.tokens.push(s.to_string());
        self.index.insert(s.to_string(), id);
        id
    }

    /// Lookup without interning.
    pub fn get(&self, s: &str) -> Option<TokenId> {
        self.index.get(s).copied()
    }

    /// The string for a token id.
    pub fn text(&self, id: TokenId) -> &str {
        &self.tokens[id as usize]
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokenize an identifier, interning unseen pieces.
    pub fn encode_identifier(&mut self, ident: &str) -> Vec<TokenId> {
        split_identifier(ident)
            .iter()
            .map(|p| self.intern(p))
            .collect()
    }

    /// Tokenize an identifier without interning; `None` if any piece is
    /// out-of-vocabulary.
    pub fn try_encode_identifier(&self, ident: &str) -> Option<Vec<TokenId>> {
        split_identifier(ident)
            .iter()
            .map(|p| self.get(p))
            .collect()
    }

    /// Concatenate token texts (the `decode` primitive).
    pub fn concat(&self, ids: &[TokenId]) -> String {
        let mut out = String::new();
        for &id in ids {
            out.push_str(self.text(id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_camel_case() {
        assert_eq!(split_identifier("lapTimes"), vec!["lap", "Times"]);
        assert_eq!(split_identifier("raceId"), vec!["race", "Id"]);
        assert_eq!(split_identifier("satscores"), vec!["satscores"]);
    }

    #[test]
    fn splits_underscores() {
        assert_eq!(
            split_identifier("operations_type"),
            vec!["operations", "_", "type"]
        );
        assert_eq!(split_identifier("a_b_c"), vec!["a", "_", "b", "_", "c"]);
    }

    #[test]
    fn splits_mixed_and_abbreviations() {
        assert_eq!(split_identifier("EdOps"), vec!["Ed", "Ops"]);
        assert_eq!(split_identifier("Rtype"), vec!["Rtype"]);
    }

    #[test]
    fn concat_inverts_split() {
        for ident in [
            "lapTimes",
            "operations_type",
            "EdOps",
            "raceId",
            "frpm",
            "yearmonth",
        ] {
            let mut v = Vocab::new();
            let ids = v.encode_identifier(ident);
            assert_eq!(v.concat(&ids), ident, "round-trip failed for {ident}");
        }
    }

    #[test]
    fn interning_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("race");
        let b = v.intern("race");
        assert_eq!(a, b);
        assert_eq!(v.text(a), "race");
    }

    #[test]
    fn specials_are_preinterned() {
        let v = Vocab::new();
        for s in [
            TOK_TABLES,
            TOK_COLUMNS,
            TOK_COLON,
            TOK_COMMA,
            TOK_DOT,
            TOK_END,
        ] {
            assert!(v.get(s).is_some(), "{s} missing");
        }
    }

    #[test]
    fn try_encode_rejects_oov() {
        let v = Vocab::new();
        assert!(v.try_encode_identifier("unseen").is_none());
    }

    #[test]
    fn database_vocab_covers_all_identifiers() {
        use nanosql::schema::{ColumnDef, TableSchema};
        use nanosql::DataType;
        let mut db = nanosql::Database::new("d");
        db.create_table(
            TableSchema::new("lapTimes")
                .column(ColumnDef::new("raceId", DataType::Int))
                .column(ColumnDef::new("operations_type", DataType::Text)),
        )
        .unwrap();
        let v = Vocab::for_database(&db);
        assert!(v.try_encode_identifier("lapTimes").is_some());
        assert!(v.try_encode_identifier("raceId").is_some());
        assert!(v.try_encode_identifier("operations_type").is_some());
    }
}

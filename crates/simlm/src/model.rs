//! The simulated fine-tuned schema-linking model.
//!
//! [`SchemaLinker::generate`] produces a token-level generation trace for
//! one instance. Two modes mirror the paper's §3.1:
//!
//! * **Free** — what the deployed model emits: wrong decisions
//!   materialise as substituted / omitted / added elements in the token
//!   stream.
//! * **TeacherForced** — the branching-point labelling procedure: the
//!   emitted stream *is* the gold stream, and every position where the
//!   free-running model would have diverged is marked as a branching
//!   point (`is_branch`), exactly like comparing `x̂ᵢ` to `xᵢ` and
//!   substituting ground truth at the first mismatch (Figure 4).
//!
//! Decisions are drawn from `hash(model seed, instance id, element)`
//! only, so Free and TeacherForced runs of the same instance describe
//! the *same counterfactual generation* — the property that makes
//! TAR/FAR (abstained-and-would-have-been-wrong vs
//! abstained-but-would-have-been-right) well defined.
//!
//! Per-token observables:
//!
//! * `softmax_prob` — over-confident regardless of correctness (Fig 3a);
//! * `hidden` — `n_layers` vectors `h_j = β·base + A·g_j·s·u_j + ε`,
//!   where `s` is the latent branching-risk signal (≈1 at branching
//!   points, ≈0.3·mass at risky-but-resolved decision points, ≈0
//!   elsewhere), `u_j` a per-layer unit direction and `g_j` a bell-shaped
//!   depth profile peaking around 70% depth. Probes must *learn* `u_j`
//!   from data; early layers carry almost no signal, so layer selection
//!   (and the paper's Figure 7 ablation) is meaningful.

use crate::linearize::element_tokens;
use crate::profile::CompetenceProfile;
use crate::vocab::{TokenId, Vocab, TOK_COLON, TOK_COLUMNS, TOK_COMMA, TOK_END, TOK_TABLES};
use benchgen::{GoldLink, Instance};
use std::collections::HashMap;
use std::sync::Arc;
use tinynn::rng::{stable_hash, SplitMix64};

/// What is being linked. (`Hash` so per-`(database, target)` caches —
/// the serving engine's context cache — can key on it directly.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LinkTarget {
    Tables,
    Columns,
}

/// Generation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenMode {
    Free,
    TeacherForced,
}

/// Which hidden-state synthesis corpus a [`SchemaLinker`] generates.
///
/// The corpus-version contract: hidden-state gaussian streams are
/// versioned, and a version is *frozen* the moment records generated
/// under it are committed. `V1` is the original corpus — every stream
/// consumes the sequential [`SplitMix64::next_gaussian`] pattern and
/// reproduces the archived `results/v1/*.json` byte-for-byte. `V2`
/// (the default) re-keys the streams to the pair-consuming
/// [`SplitMix64::fill_gaussian`] pattern and merges each base+noise
/// stream pair (per token and per layer) into a single stream at the
/// combined amplitude — half the uniform draws, half the
/// `ln`/`sqrt`/trig, and half the streams for the same multivariate
/// distribution — and backs the current `results/*.json` /
/// `BENCH_rts.json`. Records
/// from different corpora are never comparable (the perf gate refuses
/// them); within a corpus, determinism is absolute.
///
/// Only the *hidden-state* streams are versioned: decisions, the
/// latent risk signal, softmax observables and layer directions are
/// corpus-shared, so Free/TeacherForced traces describe the same
/// counterfactual generation under either version.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CorpusVersion {
    /// Frozen original corpus (sequential sampler; `results/v1/`).
    V1,
    /// Current corpus (chunked pair sampler; `results/`).
    #[default]
    V2,
}

impl CorpusVersion {
    /// Short stable tag used in records and env vars (`RTS_CORPUS`).
    pub fn tag(self) -> &'static str {
        match self {
            CorpusVersion::V1 => "v1",
            CorpusVersion::V2 => "v2",
        }
    }
}

/// The model's (counterfactual) decision for one gold element.
/// (Serde so a suspended linking session can checkpoint its pinned
/// per-element overrides out of memory and restore them bit-exactly.)
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Decision {
    Correct,
    /// Link to this wrong element instead.
    Substitute(String),
    /// Skip the gold element entirely.
    Omit,
    /// Emit the gold element, then also this spurious one (only drawn at
    /// the final position, where the divergence is a clean single token).
    AddExtra(String),
}

impl Decision {
    pub fn is_error(&self) -> bool {
        !matches!(self, Decision::Correct)
    }
}

/// Which hidden layers a consumer wants synthesized.
///
/// The mBPP only ever reads its `k` selected probe layers (~5 of 30),
/// and the unmonitored counterfactual run in the RTS runtime reads no
/// hidden state at all — synthesizing the full stack for those callers
/// is the dominant per-instance cost. A `LayerSet` threads the request
/// down into the hidden-state synthesis so only the layers that
/// will actually be read are materialised. Skipping a layer is
/// bit-exact safe: every layer's gaussian streams are independently
/// seeded from `(token, layer, instance, position)`, so the synthesized
/// layers are identical to their full-stack counterparts (pinned by the
/// lazy/eager parity proptests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerSet {
    /// `None` = every layer (the full-stack default for training paths
    /// like `BranchDataset::build`); `Some` = sorted, deduplicated
    /// layer indices. Shared (`Arc`) so each token's [`HiddenStack`]
    /// can carry the mapping without per-token allocation.
    sel: Option<Arc<[usize]>>,
}

impl LayerSet {
    /// Every layer — the eager full-stack default.
    pub fn all() -> Self {
        Self { sel: None }
    }

    /// No layers at all: token/probability observables only. The RTS
    /// runtime uses this for the unmonitored counterfactual, which only
    /// reads `predicted_set()`.
    pub fn none() -> Self {
        Self {
            sel: Some(Arc::from(Vec::new())),
        }
    }

    /// A specific set of layers (sorted and deduplicated here).
    pub fn select(layers: impl IntoIterator<Item = usize>) -> Self {
        let mut sel: Vec<usize> = layers.into_iter().collect();
        sel.sort_unstable();
        sel.dedup();
        Self {
            sel: Some(Arc::from(sel)),
        }
    }

    /// Does the set request the full stack?
    pub fn is_all(&self) -> bool {
        self.sel.is_none()
    }

    /// Is layer `j` requested?
    pub fn contains(&self, j: usize) -> bool {
        match &self.sel {
            None => true,
            Some(sel) => sel.binary_search(&j).is_ok(),
        }
    }

    /// Number of layers synthesized for a model of `n_layers` depth.
    pub fn count(&self, n_layers: usize) -> usize {
        match &self.sel {
            None => n_layers,
            Some(sel) => sel.len(),
        }
    }
}

/// Contiguous per-token hidden-state stack, row-major. One allocation
/// per token instead of one per layer keeps trace generation
/// allocation-light and gives the batched monitoring path
/// cache-friendly, pack-ready rows.
///
/// A stack is either *dense* (row `r` is layer `r` — what the default
/// full-stack [`SchemaLinker::generate`] produces) or *selected* (rows
/// correspond to an explicit sorted list of layer indices — what lazy
/// synthesis under a [`LayerSet`] produces). [`HiddenStack::layer`]
/// indexes by the original layer id either way, so consumers like the
/// mBPP read `hidden.layer(probe.layer)` without caring which mode
/// produced the stack.
#[derive(Debug, Clone, PartialEq)]
pub struct HiddenStack {
    dim: usize,
    data: Vec<f32>,
    /// `None` = dense; `Some` = row `r` holds layer `layers[r]`.
    layers: Option<Arc<[usize]>>,
}

impl HiddenStack {
    /// Build a dense stack from a flat row-major buffer of
    /// `n_layers × dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "flat hidden buffer shape mismatch"
        );
        Self {
            dim,
            data,
            layers: None,
        }
    }

    /// Build a selected-layer stack: row `r` of `data` is layer
    /// `layers[r]` (sorted, deduplicated — [`LayerSet::select`]'s
    /// invariant).
    pub fn from_selected(dim: usize, data: Vec<f32>, layers: Arc<[usize]>) -> Self {
        assert!(
            dim > 0 && data.len() == layers.len() * dim,
            "selected hidden buffer shape mismatch"
        );
        Self {
            dim,
            data,
            layers: Some(layers),
        }
    }

    /// Number of synthesized layers in the stack (mirrors the old
    /// `Vec` API; equals the model depth only for dense stacks).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Hidden-state dimensionality per layer.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Was layer `j` synthesized into this stack?
    pub fn has_layer(&self, j: usize) -> bool {
        match &self.layers {
            None => j < self.len(),
            Some(layers) => layers.binary_search(&j).is_ok(),
        }
    }

    /// One layer's hidden-state vector, indexed by *original* layer id.
    /// Panics if the layer was not synthesized (a lazy trace being read
    /// by a consumer that never requested that layer is a logic error,
    /// not a recoverable condition).
    #[inline]
    pub fn layer(&self, j: usize) -> &[f32] {
        let row = match &self.layers {
            None => j,
            Some(layers) => layers
                .binary_search(&j)
                .unwrap_or_else(|_| panic!("layer {j} not synthesized in lazy hidden stack")),
        };
        &self.data[row * self.dim..(row + 1) * self.dim]
    }

    /// Iterate over the synthesized rows in depth order. For dense
    /// stacks this is every layer; for selected stacks pair it with
    /// [`HiddenStack::layer_indices`] to know which layer each row is.
    pub fn iter(&self) -> std::slice::ChunksExact<'_, f32> {
        self.data.chunks_exact(self.dim)
    }

    /// Heap bytes the synthesized hidden states occupy — what a parked
    /// serving session holding this stack is billed for.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of_val(self.data.as_slice())
    }

    /// The original layer id of each stored row, in row order.
    pub fn layer_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let dense = self.layers.is_none();
        let n = self.len();
        (0..n).map(move |r| {
            if dense {
                r
            } else {
                self.layers.as_ref().unwrap()[r]
            }
        })
    }
}

impl std::ops::Index<usize> for HiddenStack {
    type Output = [f32];

    #[inline]
    fn index(&self, j: usize) -> &[f32] {
        self.layer(j)
    }
}

impl<'a> IntoIterator for &'a HiddenStack {
    type Item = &'a [f32];
    type IntoIter = std::slice::ChunksExact<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Observables for one generated token.
#[derive(Debug, Clone)]
pub struct StepTrace {
    pub token: TokenId,
    /// Softmax probability of the emitted token (over-confident).
    pub softmax_prob: f64,
    /// Hidden-state vectors of `hidden_dim` each: all `n_layers` under
    /// the default full-stack generation, or only the requested subset
    /// when the trace was produced lazily under a [`LayerSet`].
    pub hidden: HiddenStack,
    /// Teacher-forced mode: is this position a branching point?
    pub is_branch: bool,
    /// Index of the gold element this token belongs to (None for
    /// header/separator tokens).
    pub element_idx: Option<usize>,
}

/// A full generation.
#[derive(Debug, Clone)]
pub struct GenerationTrace {
    pub tokens: Vec<TokenId>,
    pub steps: Vec<StepTrace>,
    /// Elements the stream denotes (free mode: the prediction; teacher
    /// forced: the gold elements).
    pub predicted: Vec<String>,
    /// Per-gold-element decisions (parallel to the gold element list).
    pub decisions: Vec<Decision>,
    pub n_branches: usize,
}

impl GenerationTrace {
    /// Deduplicated predicted element set.
    pub fn predicted_set(&self) -> Vec<String> {
        let mut s = self.predicted.clone();
        s.sort();
        s.dedup();
        s
    }

    /// Total heap bytes of synthesized hidden state across the trace —
    /// the dominant share of what a suspended linking session keeps
    /// alive while parked awaiting feedback.
    pub fn hidden_bytes(&self) -> usize {
        self.steps.iter().map(|s| s.hidden.footprint_bytes()).sum()
    }

    /// Pack one layer's hidden states across all tokens into a
    /// `(n_tokens × dim)` matrix (allocation reused via the caller's
    /// buffer) — the batched monitoring/scoring paths' input format.
    pub fn pack_layer_into(&self, layer: usize, out: &mut tinynn::Matrix) {
        let dim = self.steps.first().map(|s| s.hidden.dim()).unwrap_or(0);
        out.resize_for_overwrite(self.steps.len(), dim);
        for (t, step) in self.steps.iter().enumerate() {
            out.row_mut(t).copy_from_slice(step.hidden.layer(layer));
        }
    }
}

/// The simulated transparent-box schema linker.
#[derive(Debug, Clone)]
pub struct SchemaLinker {
    pub n_layers: usize,
    pub hidden_dim: usize,
    pub competence: CompetenceProfile,
    pub seed: u64,
    /// Depth profile g_j ∈ [0.02, 1].
    layer_gain: Vec<f64>,
    /// Per-layer unit directions u_j.
    layer_dirs: Vec<Vec<f32>>,
    signal_amp: f64,
    base_amp: f64,
    noise_amp: f64,
    /// Which synthesis corpus the hidden-state streams draw from.
    corpus: CorpusVersion,
    /// Testing hook: synthesize the v2 corpus through the
    /// straightforward per-dimension sequential sampler instead of the
    /// chunked row fills. Output is bit-identical (pinned by the
    /// chunked≡sequential parity proptest); only the inner loop shape
    /// differs.
    v2_sequential_reference: bool,
}

impl SchemaLinker {
    /// "Fine-tune" (instantiate) a linker for a benchmark.
    pub fn new(benchmark: &str, seed: u64) -> Self {
        Self::with_architecture(benchmark, seed, 30, 32)
    }

    /// Custom depth/width (used by ablations).
    pub fn with_architecture(
        benchmark: &str,
        seed: u64,
        n_layers: usize,
        hidden_dim: usize,
    ) -> Self {
        assert!(n_layers >= 2 && hidden_dim >= 4);
        let mut rng = SplitMix64::new(seed ^ 0x5EED_11A6);
        let mut layer_gain = Vec::with_capacity(n_layers);
        for j in 0..n_layers {
            let depth = j as f64 / (n_layers - 1) as f64;
            let bell = (-((depth - 0.68) / 0.22).powi(2)).exp();
            // Deterministic per-layer jitter keeps neighbouring layers
            // from being interchangeable.
            let jitter = 0.15 * (rng.next_f64() - 0.5);
            // Early layers are near-blind (tiny gain): their balanced
            // probes honestly output p ≈ 0.5, so their conformal sets
            // are the wide {0,1} a clueless expert should produce. That
            // is the regime behind the paper's Figure 7 contrast: wide
            // sets pollute the θ-majority vote at large k while the
            // permutation merge prunes them.
            layer_gain.push((bell + jitter).clamp(0.05, 1.0));
        }
        let mut layer_dirs = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let mut dir: Vec<f32> = (0..hidden_dim)
                // rts-allow(corpus-v1): layer directions are corpus-shared
                // model architecture, not a per-token synthesis stream —
                // v1 and v2 project onto the same u_j by design.
                .map(|_| rng.next_gaussian() as f32)
                .collect();
            let norm = dir.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            dir.iter_mut().for_each(|x| *x /= norm);
            layer_dirs.push(dir);
        }
        Self {
            n_layers,
            hidden_dim,
            competence: CompetenceProfile::for_benchmark(benchmark),
            seed,
            layer_gain,
            layer_dirs,
            signal_amp: 2.9,
            base_amp: 0.32,
            noise_amp: 0.18,
            corpus: CorpusVersion::default(),
            v2_sequential_reference: false,
        }
    }

    /// Pin the synthesis corpus version (builder style). The default is
    /// [`CorpusVersion::V2`]; pass [`CorpusVersion::V1`] to reproduce
    /// the archived `results/v1/*.json` byte-for-byte.
    pub fn with_corpus(mut self, corpus: CorpusVersion) -> Self {
        self.corpus = corpus;
        self
    }

    /// The synthesis corpus this linker generates.
    pub fn corpus(&self) -> CorpusVersion {
        self.corpus
    }

    /// Switch v2 synthesis to the straightforward sequential reference
    /// sampler (scalar pair draws per dimension, no row buffers). Used
    /// by the chunked≡sequential parity proptest; answers are
    /// bit-identical either way.
    pub fn with_v2_sequential_reference(mut self) -> Self {
        self.v2_sequential_reference = true;
        self
    }

    /// Layer depth profile (exposed for the layer-selection ablation).
    pub fn layer_gains(&self) -> &[f64] {
        &self.layer_gain
    }

    /// Gold element strings for a target.
    pub fn gold_elements(inst: &Instance, target: LinkTarget) -> Vec<String> {
        match target {
            LinkTarget::Tables => inst.gold_tables.clone(),
            LinkTarget::Columns => inst
                .gold_columns
                .iter()
                .map(|(t, c)| format!("{t}.{c}"))
                .collect(),
        }
    }

    /// The gold link annotation for an element string.
    fn link_for<'a>(inst: &'a Instance, element: &str, target: LinkTarget) -> Option<&'a GoldLink> {
        match target {
            LinkTarget::Tables => inst
                .links
                .iter()
                .find(|l| l.element.is_table() && l.element.table == element),
            LinkTarget::Columns => inst
                .links
                .iter()
                .find(|l| !l.element.is_table() && format!("{}", l.element) == element),
        }
    }

    /// The model's deterministic counterfactual decision for one gold
    /// element. Draws depend only on (model seed, instance id, element).
    pub fn decision_for(
        &self,
        inst: &Instance,
        element: &str,
        target: LinkTarget,
        is_last: bool,
    ) -> Decision {
        let mut rng = SplitMix64::new(
            self.seed
                ^ stable_hash(element.as_bytes())
                ^ inst.id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let Some(link) = Self::link_for(inst, element, target) else {
            return Decision::Correct;
        };
        let is_table = target == LinkTarget::Tables;
        // Shared per-instance disposition: the same questions that trip
        // table linking trip column linking (the abstention overlap of
        // §4.3). Mean 1, so marginal error rates are unchanged.
        let mut inst_rng = SplitMix64::new(self.seed ^ inst.id.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        let disposition = 0.25 + 1.5 * inst_rng.next_f64();
        let p_err = disposition
            * self
                .competence
                .link_error_prob(is_table, inst.hardness, link.confusion_mass());
        if !rng.next_bool(p_err.min(0.95)) {
            return Decision::Correct;
        }
        // Matching-kind confusables that are not themselves part of the
        // gold answer (substituting an already-linked element is just an
        // omission wearing a costume — the answer is a set).
        let gold = Self::gold_elements(inst, target);
        let candidates: Vec<&benchgen::Confusable> = link
            .confusables
            .iter()
            .filter(|c| c.alt.is_table() == is_table && !gold.contains(&c.alt.to_string()))
            .collect();
        let kind = rng.next_f64();
        if kind < self.competence.p_substitute && !candidates.is_empty() {
            // Weighted draw over confusables.
            let total: f64 = candidates.iter().map(|c| c.weight).sum();
            let mut x = rng.next_f64() * total;
            for c in &candidates {
                x -= c.weight;
                if x <= 0.0 {
                    return Decision::Substitute(c.alt.to_string());
                }
            }
            return Decision::Substitute(candidates[candidates.len() - 1].alt.to_string());
        }
        if kind < self.competence.p_substitute + self.competence.p_omit {
            return Decision::Omit;
        }
        // AddExtra only at the last element; otherwise fall back.
        if is_last && !candidates.is_empty() {
            let pick = &candidates[rng.next_below(candidates.len())];
            return Decision::AddExtra(pick.alt.to_string());
        }
        if !candidates.is_empty() {
            return Decision::Substitute(candidates[0].alt.to_string());
        }
        Decision::Omit
    }

    /// Generate for an instance with a full hidden-state stack. See
    /// module docs for mode semantics.
    pub fn generate(
        &self,
        inst: &Instance,
        vocab: &mut Vocab,
        target: LinkTarget,
        mode: GenMode,
    ) -> GenerationTrace {
        self.generate_with_overrides(inst, vocab, target, mode, &HashMap::new())
    }

    /// Generate with per-element decision overrides (the mitigation
    /// loop's "continue after correction": a human confirming the gold
    /// element pins its decision to `Correct`; a human mis-confirming a
    /// wrong candidate pins `Substitute`). Full hidden-state stack.
    pub fn generate_with_overrides(
        &self,
        inst: &Instance,
        vocab: &mut Vocab,
        target: LinkTarget,
        mode: GenMode,
        overrides: &HashMap<String, Decision>,
    ) -> GenerationTrace {
        self.generate_with_overrides_and_layers(
            inst,
            vocab,
            target,
            mode,
            overrides,
            &LayerSet::all(),
            &mut SynthScratch::default(),
        )
    }

    /// [`SchemaLinker::generate`] synthesizing only the requested
    /// layers. Every synthesized layer is bit-identical to its
    /// full-stack counterpart (per-layer gaussian streams are
    /// independently seeded), so monitoring a lazy trace raises exactly
    /// the flags monitoring an eager trace would. `scratch` is reused
    /// across calls, keeping steady-state synthesis allocation-light.
    pub fn generate_with_layers(
        &self,
        inst: &Instance,
        vocab: &mut Vocab,
        target: LinkTarget,
        mode: GenMode,
        layers: &LayerSet,
        scratch: &mut SynthScratch,
    ) -> GenerationTrace {
        self.generate_with_overrides_and_layers(
            inst,
            vocab,
            target,
            mode,
            &HashMap::new(),
            layers,
            scratch,
        )
    }

    /// The full-control generation entry point: decision overrides plus
    /// a [`LayerSet`] selecting which hidden layers to synthesize.
    #[allow(clippy::too_many_arguments)] // the one fully-explicit entry point
    pub fn generate_with_overrides_and_layers(
        &self,
        inst: &Instance,
        vocab: &mut Vocab,
        target: LinkTarget,
        mode: GenMode,
        overrides: &HashMap<String, Decision>,
        layers: &LayerSet,
        scratch: &mut SynthScratch,
    ) -> GenerationTrace {
        let gold = Self::gold_elements(inst, target);
        let n = gold.len();
        let decisions: Vec<Decision> = gold
            .iter()
            .enumerate()
            .map(|(i, e)| {
                overrides
                    .get(e)
                    .cloned()
                    .unwrap_or_else(|| self.decision_for(inst, e, target, i + 1 == n))
            })
            .collect();

        let header = match target {
            LinkTarget::Tables => TOK_TABLES,
            LinkTarget::Columns => TOK_COLUMNS,
        };
        let comma = vocab.intern(TOK_COMMA);
        let end = vocab.intern(TOK_END);

        // Segment list: (tokens, element_idx, kind, branch_at,
        // branch_elem). `branch_elem` re-attributes a branch token to a
        // *different* gold element than the segment's own (the omission
        // case: the divergence is visible on the next emitted token but
        // implicates the skipped element).
        #[derive(Clone, Copy, PartialEq)]
        enum Kind {
            Special,
            GoldElem,
            WrongElem,
            ExtraElem,
        }
        struct Segment {
            tokens: Vec<TokenId>,
            element_idx: Option<usize>,
            kind: Kind,
            branch_at: Option<usize>,
            branch_elem: Option<usize>,
        }
        let mut segments: Vec<Segment> = Vec::new();
        segments.push(Segment {
            tokens: vec![vocab.intern(header), vocab.intern(TOK_COLON)],
            element_idx: None,
            kind: Kind::Special,
            branch_at: None,
            branch_elem: None,
        });

        // Branch bookkeeping for teacher-forced mode.
        let mut n_branches = 0usize;
        let mut predicted: Vec<String> = Vec::new();

        let mut emitted_any = false;
        // Free mode: an omission's divergence becomes visible on the
        // next emitted element token; this carries the skipped element's
        // index until that token exists.
        let mut pending_omit: Option<usize> = None;
        for (i, element) in gold.iter().enumerate() {
            let gold_toks = element_tokens(vocab, element);
            let decision = &decisions[i];
            match mode {
                GenMode::TeacherForced => {
                    // Stream = gold; mark the first token where the free
                    // model would have diverged.
                    if emitted_any {
                        segments.push(Segment {
                            tokens: vec![comma],
                            element_idx: None,
                            kind: Kind::Special,
                            branch_at: None,
                            branch_elem: None,
                        });
                    }
                    let branch_at = match decision {
                        Decision::Correct => None,
                        Decision::Substitute(alt) => {
                            let alt_toks = element_tokens(vocab, alt);
                            let mut pos = gold_toks
                                .iter()
                                .zip(alt_toks.iter())
                                .position(|(g, a)| g != a);
                            if pos.is_none() {
                                // One name is a strict prefix of the
                                // other → divergence at the shorter end.
                                pos = Some(gold_toks.len().min(alt_toks.len()).saturating_sub(1));
                            }
                            pos
                        }
                        // The model wanted to jump ahead: divergence at
                        // the gold element's first token.
                        Decision::Omit => Some(0),
                        // Divergence appears at the closing separator
                        // (handled below); the element itself is clean.
                        Decision::AddExtra(_) => None,
                    };
                    if branch_at.is_some() {
                        n_branches += 1;
                    }
                    segments.push(Segment {
                        tokens: gold_toks,
                        element_idx: Some(i),
                        kind: Kind::GoldElem,
                        branch_at,
                        branch_elem: None,
                    });
                    predicted.push(element.clone());
                    emitted_any = true;
                }
                GenMode::Free => match decision {
                    Decision::Correct => {
                        if emitted_any {
                            segments.push(Segment {
                                tokens: vec![comma],
                                element_idx: None,
                                kind: Kind::Special,
                                branch_at: None,
                                branch_elem: None,
                            });
                        }
                        let branch_elem = pending_omit.take();
                        segments.push(Segment {
                            tokens: gold_toks,
                            element_idx: Some(i),
                            kind: Kind::GoldElem,
                            branch_at: branch_elem.map(|_| 0),
                            branch_elem,
                        });
                        predicted.push(element.clone());
                        emitted_any = true;
                    }
                    Decision::Substitute(alt) => {
                        if emitted_any {
                            segments.push(Segment {
                                tokens: vec![comma],
                                element_idx: None,
                                kind: Kind::Special,
                                branch_at: None,
                                branch_elem: None,
                            });
                        }
                        pending_omit = None;
                        let alt_toks = element_tokens(vocab, alt);
                        segments.push(Segment {
                            tokens: alt_toks,
                            element_idx: Some(i),
                            kind: Kind::WrongElem,
                            branch_at: Some(0),
                            branch_elem: None,
                        });
                        predicted.push(alt.clone());
                        emitted_any = true;
                    }
                    Decision::Omit => {
                        pending_omit = Some(i);
                    }
                    Decision::AddExtra(extra) => {
                        if emitted_any {
                            segments.push(Segment {
                                tokens: vec![comma],
                                element_idx: None,
                                kind: Kind::Special,
                                branch_at: None,
                                branch_elem: None,
                            });
                        }
                        let branch_elem = pending_omit.take();
                        segments.push(Segment {
                            tokens: gold_toks,
                            element_idx: Some(i),
                            kind: Kind::GoldElem,
                            branch_at: branch_elem.map(|_| 0),
                            branch_elem,
                        });
                        predicted.push(element.clone());
                        emitted_any = true;
                        segments.push(Segment {
                            tokens: vec![comma],
                            element_idx: None,
                            kind: Kind::Special,
                            branch_at: None,
                            branch_elem: None,
                        });
                        let extra_toks = element_tokens(vocab, extra);
                        segments.push(Segment {
                            tokens: extra_toks,
                            element_idx: Some(i),
                            kind: Kind::ExtraElem,
                            branch_at: Some(0),
                            branch_elem: None,
                        });
                        predicted.push(extra.clone());
                    }
                },
            }
        }
        // Terminator. In teacher-forced mode an AddExtra decision means
        // the model wanted "," here instead of ";": a branching point on
        // the separator itself. In free mode a trailing omission's
        // divergence lands on the early ";".
        let add_extra_wanted = matches!(decisions.last(), Some(Decision::AddExtra(_)));
        let end_branch_elem = pending_omit.take();
        let end_branch = if mode == GenMode::TeacherForced && add_extra_wanted {
            n_branches += 1;
            Some(0)
        } else {
            end_branch_elem.map(|_| 0)
        };
        segments.push(Segment {
            tokens: vec![end],
            element_idx: None,
            kind: Kind::Special,
            branch_at: end_branch,
            branch_elem: end_branch_elem,
        });

        // Per-element branch-signal strength: a substitution toward a
        // strongly attractive confusable is a *confident* mistake — the
        // model's internal uncertainty is low, so the latent risk signal
        // is weaker and harder for probes to catch. Omissions and
        // spurious additions sit in between.
        let branch_strength: Vec<f64> = gold
            .iter()
            .zip(decisions.iter())
            .map(|(element, d)| match d {
                Decision::Correct => 0.0,
                Decision::Substitute(alt) => {
                    let attract = Self::link_for(inst, element, target)
                        .and_then(|l| {
                            l.confusables
                                .iter()
                                .find(|c| c.alt.to_string() == *alt)
                                .map(|c| (c.weight / 0.65).min(1.0))
                        })
                        .unwrap_or(0.5);
                    1.05 - 0.20 * attract
                }
                Decision::Omit => 0.92,
                Decision::AddExtra(_) => 0.85,
            })
            .collect();

        // Materialise steps with hidden states and probabilities.
        let mut tokens = Vec::new();
        let mut steps = Vec::new();
        let mut pos = 0usize;
        for seg in segments {
            let Segment {
                tokens: seg_tokens,
                element_idx,
                kind,
                branch_at,
                branch_elem,
            } = seg;
            // Link risk for signal shaping at the element's first token.
            let link_mass = element_idx
                .and_then(|i| Self::link_for(inst, &gold[i], target))
                .map(|l| l.confusion_mass())
                .unwrap_or(0.0);
            for (k, &tok) in seg_tokens.iter().enumerate() {
                let is_branch = branch_at == Some(k);
                let step_element = if is_branch && branch_elem.is_some() {
                    branch_elem
                } else {
                    element_idx
                };
                // Latent risk signal s for this token.
                let mut srng = SplitMix64::new(
                    self.seed
                        ^ inst.id.wrapping_mul(0xA076_1D64_78BD_642F)
                        ^ ((pos as u64) << 17)
                        ^ 0x517C_C1B7_2722_0A95,
                );
                // The s-signal / softmax stream below is corpus-shared
                // observable structure (decision topology), not
                // hidden-state synthesis — v1 and v2 traces carry the
                // same s and softmax_prob by design, so these sites
                // keep the sequential sampler under either corpus.
                let s = if is_branch {
                    let strength = step_element
                        .map(|i| branch_strength[i])
                        .filter(|&v| v > 0.0)
                        .unwrap_or(0.9);
                    // rts-allow(corpus-v1): corpus-shared s-signal stream
                    strength + 0.07 * srng.next_gaussian()
                } else {
                    match kind {
                        // rts-allow(corpus-v1): corpus-shared s-signal stream
                        Kind::WrongElem | Kind::ExtraElem => 0.20 + 0.12 * srng.next_gaussian(),
                        Kind::GoldElem if k == 0 => {
                            // Risky-but-resolved decision point.
                            // Saturating in confusion mass: even
                            // mildly-confusable links produce a mid-range
                            // signal, giving the conformal calibration a
                            // tail to quantile against at every α.
                            let level = 0.70 * (link_mass + 0.08) / (0.43 + link_mass);
                            // rts-allow(corpus-v1): corpus-shared s-signal stream
                            level + 0.22 * srng.next_gaussian()
                        }
                        // Ordinary tokens carry a continuum of spurious
                        // risk-direction content (folded normal), so
                        // probe scores — and with them the conformal
                        // calibration quantiles — vary smoothly instead
                        // of collapsing to a point mass at zero.
                        // rts-allow(corpus-v1): corpus-shared s-signal stream
                        _ => 0.04 + 0.12 * srng.next_gaussian().abs(),
                    }
                };

                // Over-confident softmax (Fig 3a): both classes hug 1.
                let prob = if is_branch {
                    // rts-allow(corpus-v1): corpus-shared softmax stream
                    (1.0 - (0.02 + 0.025 * srng.next_gaussian().abs())).clamp(0.85, 0.9995)
                } else {
                    // rts-allow(corpus-v1): corpus-shared softmax stream
                    (1.0 - 0.008 * srng.next_gaussian().abs()).clamp(0.9, 0.99995)
                };

                let hidden = self.hidden_states_for(inst, pos, tok, s, layers, scratch);
                tokens.push(tok);
                steps.push(StepTrace {
                    token: tok,
                    softmax_prob: prob,
                    hidden,
                    is_branch,
                    element_idx: step_element,
                });
                pos += 1;
            }
        }

        GenerationTrace {
            tokens,
            steps,
            predicted,
            decisions,
            n_branches,
        }
    }

    /// Hidden-state stack for one token: base features + risk direction
    /// + noise, all deterministic in (seed, instance, position, corpus).
    ///
    /// Base content and noise are *correlated across layers* (70%
    /// shared / 30% layer-specific), mirroring a transformer residual
    /// stream where layer `j+1` is layer `j` plus a small update. The
    /// correlation matters downstream: per-layer probes then make
    /// correlated mistakes, exactly the regime the paper's merge
    /// theorems are designed for (they assume nothing about
    /// independence).
    ///
    /// Only the layers in `layers` are synthesized. The gaussian
    /// streams are versioned by [`CorpusVersion`]: under `V1` every
    /// stream keeps the sequential [`SplitMix64::next_gaussian`]
    /// consumption pattern the archived `results/v1/*.json` corpus is
    /// pinned to; under `V2` (the default) the streams are re-keyed to
    /// the pair-consuming [`SplitMix64::fill_gaussian`] pattern —
    /// whole `hidden_dim` rows per call, half the uniform draws, and
    /// one merged layer-specific stream instead of two (the sum of two
    /// independent gaussians is a gaussian, so the multivariate
    /// distribution is unchanged). Each version is frozen once records
    /// generated under it are committed; speedups that would move a
    /// stream belong in a *new* version.
    fn hidden_states_for(
        &self,
        inst: &Instance,
        pos: usize,
        tok: TokenId,
        s: f64,
        layers: &LayerSet,
        scratch: &mut SynthScratch,
    ) -> HiddenStack {
        if let Some(sel) = &layers.sel {
            if let Some(&max) = sel.last() {
                assert!(max < self.n_layers, "layer {max} out of range");
            }
            if sel.is_empty() {
                // Token/probability observables only: no consumer will
                // read hidden state, so skip the gaussian work entirely
                // (the per-token RNGs are freshly seeded, so skipping
                // them perturbs nothing else).
                return HiddenStack::from_selected(self.hidden_dim, Vec::new(), sel.clone());
            }
        }
        match self.corpus {
            CorpusVersion::V1 => self.hidden_states_v1(inst, pos, tok, s, layers, scratch),
            CorpusVersion::V2 if self.v2_sequential_reference => {
                self.hidden_states_v2_sequential(inst, pos, tok, s, layers, scratch)
            }
            CorpusVersion::V2 => self.hidden_states_v2(inst, pos, tok, s, layers, scratch),
        }
    }

    /// The frozen v1 synthesis path, byte-for-byte as committed with
    /// `results/v1/*.json`: sequential `next_gaussian` draws on two
    /// shared and two per-layer streams. Never change these draws —
    /// the v1 parity test compares the archived records byte-identically.
    fn hidden_states_v1(
        &self,
        inst: &Instance,
        pos: usize,
        tok: TokenId,
        s: f64,
        layers: &LayerSet,
        scratch: &mut SynthScratch,
    ) -> HiddenStack {
        let n_rows = layers.count(self.n_layers);
        // Shared token content: one draw per dimension, reused by every
        // layer.
        let mut shared_rng = SplitMix64::new(stable_hash(&token_key(tok, inst.id, pos)));
        let mut shared_noise_rng = SplitMix64::new(
            self.seed ^ inst.id.rotate_left(23) ^ ((pos as u64) << 32) ^ 0xD6E8_FEB8_6659_FD93,
        );
        scratch.shared_base.clear();
        scratch
            .shared_base
            // rts-allow(corpus-v1): frozen v1 shared-content stream
            .extend((0..self.hidden_dim).map(|_| shared_rng.next_gaussian()));
        scratch.shared_noise.clear();
        scratch
            .shared_noise
            // rts-allow(corpus-v1): frozen v1 shared-noise stream
            .extend((0..self.hidden_dim).map(|_| shared_noise_rng.next_gaussian()));
        let shared_base = &scratch.shared_base;
        let shared_noise = &scratch.shared_noise;

        let mut out = Vec::with_capacity(n_rows * self.hidden_dim);
        let synth_layer = |j: usize, h: &mut Vec<f32>| {
            let mut base_rng = SplitMix64::new(stable_hash(&layer_key(tok, j, inst.id, pos)));
            let mut noise_rng = SplitMix64::new(
                self.seed
                    ^ inst.id.rotate_left(23)
                    ^ ((pos as u64) << 32)
                    ^ ((j as u64) << 8)
                    ^ 0xA5A5_1234_9ABC_DEF0,
            );
            let g = self.layer_gain[j];
            let dir = &self.layer_dirs[j];
            let mix = (1.0 - SHARE * SHARE).sqrt();
            for d in 0..self.hidden_dim {
                let base =
                    // rts-allow(corpus-v1): frozen v1 per-layer base stream
                    self.base_amp * (SHARE * shared_base[d] + mix * base_rng.next_gaussian());
                let signal = self.signal_amp * g * s * dir[d] as f64;
                let noise =
                    // rts-allow(corpus-v1): frozen v1 per-layer noise stream
                    self.noise_amp * (SHARE * shared_noise[d] + mix * noise_rng.next_gaussian());
                h.push((base + signal + noise) as f32);
            }
        };
        match &layers.sel {
            None => {
                for j in 0..self.n_layers {
                    synth_layer(j, &mut out);
                }
                HiddenStack::from_flat(self.hidden_dim, out)
            }
            Some(sel) => {
                for &j in sel.iter() {
                    synth_layer(j, &mut out);
                }
                HiddenStack::from_selected(self.hidden_dim, out, sel.clone())
            }
        }
    }

    /// Seed of the single merged per-layer v2 stream. v1 spent two
    /// streams per layer (base + noise); v2 merges them into one at
    /// amplitude `mix·√(base_amp² + noise_amp²)` — same distribution,
    /// half the per-layer seeding and stream bookkeeping. The seed
    /// mixes the structural layer key with the model seed (the v1
    /// noise stream depended on it, so the merged stream must too) and
    /// a fresh salt so it collides with neither v1 stream.
    #[inline]
    fn v2_layer_seed(&self, tok: TokenId, j: usize, inst_id: u64, pos: usize) -> u64 {
        stable_hash(&layer_key(tok, j, inst_id, pos))
            ^ self.seed.rotate_left(17)
            ^ 0x9E6C_63D0_5C02_71A7
    }

    /// Amplitude of the merged layer-specific v2 stream: the two v1
    /// layer streams contribute `mix·(base_amp·g_b + noise_amp·g_n)`
    /// per dimension, a gaussian with this standard deviation.
    #[inline]
    fn v2_merged_amp(&self) -> f64 {
        (1.0 - SHARE * SHARE).sqrt()
            * (self.base_amp * self.base_amp + self.noise_amp * self.noise_amp).sqrt()
    }

    /// Seed of the single merged shared v2 stream. v1 spent two shared
    /// per-token streams (content, keyed on the token; noise, keyed on
    /// the model seed); v2 merges them into one at
    /// [`SchemaLinker::v2_shared_amp`] — same distribution, half the
    /// shared-row synthesis. The seed mixes the content key with the
    /// model seed (each v1 stream depended on one of them, so the
    /// merged stream must depend on both) and a fresh salt so it
    /// collides with neither.
    #[inline]
    fn v2_shared_seed(&self, tok: TokenId, inst_id: u64, pos: usize) -> u64 {
        stable_hash(&token_key(tok, inst_id, pos))
            ^ self.seed.rotate_left(29)
            ^ 0xD6E8_FEB8_6659_FD93
    }

    /// Amplitude of the merged shared v2 stream: the two v1 shared
    /// streams contribute `SHARE·(base_amp·g_b + noise_amp·g_n)` per
    /// dimension, a gaussian with this standard deviation. Shared
    /// across every layer of the token, exactly like v1's shared
    /// component — the cross-layer correlation the mBPP merge sees is
    /// unchanged.
    #[inline]
    fn v2_shared_amp(&self) -> f64 {
        SHARE * (self.base_amp * self.base_amp + self.noise_amp * self.noise_amp).sqrt()
    }

    /// The v2 chunked synthesis path: every stream is materialised a
    /// whole `hidden_dim` row at a time through
    /// [`SplitMix64::fill_gaussian`] — both Box–Muller variates kept
    /// (half the uniform draws and half the `ln`/`sqrt`/trig of the v1
    /// sequential sampler), contiguous cache-friendly writes, and one
    /// merged stream per layer *and* per token instead of two of each.
    /// The shared row is scaled to its final amplitude once per token,
    /// so the per-layer combine is a single fused add per stream.
    /// Composes with the [`LayerSet`] lazy selection exactly like v1:
    /// per-layer streams are independently seeded, so skipping a layer
    /// perturbs nothing.
    fn hidden_states_v2(
        &self,
        inst: &Instance,
        pos: usize,
        tok: TokenId,
        s: f64,
        layers: &LayerSet,
        scratch: &mut SynthScratch,
    ) -> HiddenStack {
        let n_rows = layers.count(self.n_layers);
        let dim = self.hidden_dim;
        let mut shared_rng = SplitMix64::new(self.v2_shared_seed(tok, inst.id, pos));
        let SynthScratch {
            shared_base,
            layer_row,
            ..
        } = scratch;
        shared_base.resize(dim, 0.0);
        shared_rng.fill_gaussian(shared_base);
        let shared_amp = self.v2_shared_amp();
        for v in shared_base.iter_mut() {
            *v *= shared_amp;
        }

        let merged_amp = self.v2_merged_amp();
        let mut out = Vec::with_capacity(n_rows * dim);
        let mut synth_layer = |j: usize, h: &mut Vec<f32>| {
            let mut layer_rng = SplitMix64::new(self.v2_layer_seed(tok, j, inst.id, pos));
            layer_row.resize(dim, 0.0);
            layer_rng.fill_gaussian(layer_row);
            let g = self.layer_gain[j];
            let dir = &self.layer_dirs[j];
            let signal_gain = self.signal_amp * g * s;
            for d in 0..dim {
                let v = shared_base[d] + merged_amp * layer_row[d] + signal_gain * dir[d] as f64;
                h.push(v as f32);
            }
        };
        match &layers.sel {
            None => {
                for j in 0..self.n_layers {
                    synth_layer(j, &mut out);
                }
                HiddenStack::from_flat(dim, out)
            }
            Some(sel) => {
                for &j in sel.iter() {
                    synth_layer(j, &mut out);
                }
                HiddenStack::from_selected(dim, out, sel.clone())
            }
        }
    }

    /// Straightforward per-dimension reference for the v2 corpus: the
    /// same streams as [`SchemaLinker::hidden_states_v2`], drawn one
    /// value at a time through [`SeqGaussian`] (which mirrors
    /// `fill_gaussian`'s pair consumption exactly) and combined in a
    /// scalar per-dimension loop with no row buffers. Bit-identical to
    /// the chunked path at every [`LayerSet`] — pinned by the
    /// chunked≡sequential parity proptest.
    fn hidden_states_v2_sequential(
        &self,
        inst: &Instance,
        pos: usize,
        tok: TokenId,
        s: f64,
        layers: &LayerSet,
        scratch: &mut SynthScratch,
    ) -> HiddenStack {
        let n_rows = layers.count(self.n_layers);
        let dim = self.hidden_dim;
        let mut shared_rng =
            SeqGaussian::new(SplitMix64::new(self.v2_shared_seed(tok, inst.id, pos)), dim);
        let shared_amp = self.v2_shared_amp();
        scratch.shared_base.clear();
        scratch
            .shared_base
            .extend((0..dim).map(|_| shared_amp * shared_rng.next()));
        let shared_base = &scratch.shared_base;

        let merged_amp = self.v2_merged_amp();
        let mut out = Vec::with_capacity(n_rows * dim);
        let synth_layer = |j: usize, h: &mut Vec<f32>| {
            let mut layer_rng = SeqGaussian::new(
                SplitMix64::new(self.v2_layer_seed(tok, j, inst.id, pos)),
                dim,
            );
            let g = self.layer_gain[j];
            let dir = &self.layer_dirs[j];
            let signal_gain = self.signal_amp * g * s;
            for d in 0..dim {
                let v =
                    shared_base[d] + merged_amp * layer_rng.next() + signal_gain * dir[d] as f64;
                h.push(v as f32);
            }
        };
        match &layers.sel {
            None => {
                for j in 0..self.n_layers {
                    synth_layer(j, &mut out);
                }
                HiddenStack::from_flat(dim, out)
            }
            Some(sel) => {
                for &j in sel.iter() {
                    synth_layer(j, &mut out);
                }
                HiddenStack::from_selected(dim, out, sel.clone())
            }
        }
    }
}

/// Shared/layer-specific content split: 0.55² ≈ 30% of the variance is
/// layer-specific under both corpora.
const SHARE: f64 = 0.55;

/// Scalar one-at-a-time view of a `fill_gaussian` stream over a row of
/// known length: pairs of variates per two values, with the lone
/// sequential draw `fill_gaussian` uses for an odd final element. Lets
/// the v2 sequential reference consume *exactly* the chunked stream
/// without materialising rows.
struct SeqGaussian {
    rng: SplitMix64,
    pending: Option<f64>,
    remaining: usize,
}

impl SeqGaussian {
    fn new(rng: SplitMix64, row_len: usize) -> Self {
        Self {
            rng,
            pending: None,
            remaining: row_len,
        }
    }

    fn next(&mut self) -> f64 {
        debug_assert!(self.remaining > 0, "SeqGaussian drawn past its row");
        self.remaining -= 1;
        if let Some(v) = self.pending.take() {
            return v;
        }
        if self.remaining == 0 {
            // Odd tail: fill_gaussian falls back to one sequential draw.
            // rts-allow(corpus-v1): mirrors fill_gaussian's odd-tail draw exactly
            return self.rng.next_gaussian();
        }
        let (a, b) = self.rng.next_gaussian_pair();
        self.pending = Some(b);
        a
    }
}

/// Reusable buffers for [`SchemaLinker`] hidden-state synthesis: the
/// shared-content vectors redrawn per token (v2 merges base+noise into
/// `shared_base` alone; `shared_noise` only serves the frozen v1
/// path), plus the merged per-layer row the v2 chunked path fills
/// through `fill_gaussian`. One instance
/// per trace (or per worker thread) keeps steady-state synthesis free
/// of the per-token allocations the old path paid, mirroring how
/// `BppScratch` amortises the monitoring path.
#[derive(Debug, Default, Clone)]
pub struct SynthScratch {
    shared_base: Vec<f64>,
    shared_noise: Vec<f64>,
    layer_row: Vec<f64>,
}

/// Seed bytes for the per-token shared-content stream — the same byte
/// string the old `[..].concat()` built, without the allocation.
#[inline]
fn token_key(tok: TokenId, inst_id: u64, pos: usize) -> [u8; 16] {
    let mut key = [0u8; 16];
    key[0..4].copy_from_slice(&tok.to_le_bytes());
    key[4..12].copy_from_slice(&inst_id.to_le_bytes());
    key[12..16].copy_from_slice(&(pos as u32).to_le_bytes());
    key
}

/// Seed bytes for one layer's base-content stream (same layout as the
/// old concat: token, layer, instance, position).
#[inline]
fn layer_key(tok: TokenId, layer: usize, inst_id: u64, pos: usize) -> [u8; 20] {
    let mut key = [0u8; 20];
    key[0..4].copy_from_slice(&tok.to_le_bytes());
    key[4..8].copy_from_slice(&(layer as u32).to_le_bytes());
    key[8..16].copy_from_slice(&inst_id.to_le_bytes());
    key[16..20].copy_from_slice(&(pos as u32).to_le_bytes());
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchgen::BenchmarkProfile;

    fn bench() -> benchgen::Benchmark {
        BenchmarkProfile::bird_like().scaled(0.01).generate(2024)
    }

    fn linker() -> SchemaLinker {
        SchemaLinker::new("bird", 7)
    }

    #[test]
    fn teacher_forced_stream_equals_gold() {
        let b = bench();
        let m = linker();
        for inst in b.split.dev.iter().take(30) {
            let mut vocab = Vocab::new();
            let trace = m.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::TeacherForced);
            let mut gold_vocab = Vocab::new();
            let gold = crate::linearize::linearize_tables(&mut gold_vocab, &inst.gold_tables);
            assert_eq!(trace.tokens.len(), gold.len());
            let texts: Vec<&str> = trace.tokens.iter().map(|&t| vocab.text(t)).collect();
            let gold_texts: Vec<&str> = gold.iter().map(|&t| gold_vocab.text(t)).collect();
            assert_eq!(texts, gold_texts);
        }
    }

    #[test]
    fn free_and_forced_agree_on_decisions() {
        let b = bench();
        let m = linker();
        for inst in b.split.dev.iter().take(50) {
            let mut v1 = Vocab::new();
            let mut v2 = Vocab::new();
            let free = m.generate(inst, &mut v1, LinkTarget::Tables, GenMode::Free);
            let forced = m.generate(inst, &mut v2, LinkTarget::Tables, GenMode::TeacherForced);
            assert_eq!(free.decisions, forced.decisions);
        }
    }

    #[test]
    fn branch_count_matches_error_decisions() {
        let b = bench();
        let m = linker();
        for inst in b.split.dev.iter().take(80) {
            let mut vocab = Vocab::new();
            let t = m.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::TeacherForced);
            let errors = t.decisions.iter().filter(|d| d.is_error()).count();
            assert_eq!(t.n_branches, errors, "decisions {:?}", t.decisions);
            let marked = t.steps.iter().filter(|s| s.is_branch).count();
            assert_eq!(marked, t.n_branches);
        }
    }

    #[test]
    fn free_mode_errors_change_prediction() {
        let b = bench();
        let m = linker();
        let mut seen_error = false;
        for inst in b.split.dev.iter() {
            let mut vocab = Vocab::new();
            let t = m.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            let correct = t.predicted_set() == inst.gold_tables;
            let has_error = t.decisions.iter().any(|d| d.is_error());
            if has_error {
                seen_error = true;
                // Substitutions/omissions/extras must change the set
                // (unless the substitute duplicates another gold table,
                // which the workload's confusable construction avoids).
                assert_ne!(t.predicted_set(), inst.gold_tables, "{:?}", t.decisions);
            } else {
                assert!(correct);
            }
        }
        assert!(seen_error, "error process never fired on the dev split");
    }

    #[test]
    fn overrides_pin_decisions() {
        let b = bench();
        let m = linker();
        // Find an instance with an erroneous table decision.
        for inst in b.split.dev.iter() {
            let mut vocab = Vocab::new();
            let t = m.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            if let Some(i) = t.decisions.iter().position(|d| d.is_error()) {
                let mut overrides = HashMap::new();
                overrides.insert(inst.gold_tables[i].clone(), Decision::Correct);
                let mut v2 = Vocab::new();
                let t2 = m.generate_with_overrides(
                    inst,
                    &mut v2,
                    LinkTarget::Tables,
                    GenMode::Free,
                    &overrides,
                );
                assert_eq!(t2.decisions[i], Decision::Correct);
                return;
            }
        }
        panic!("no erroneous instance found");
    }

    #[test]
    fn hidden_states_have_declared_shape() {
        let b = bench();
        let m = linker();
        let inst = &b.split.dev[0];
        let mut vocab = Vocab::new();
        let t = m.generate(
            inst,
            &mut vocab,
            LinkTarget::Columns,
            GenMode::TeacherForced,
        );
        for step in &t.steps {
            assert_eq!(step.hidden.len(), m.n_layers);
            for h in &step.hidden {
                assert_eq!(h.len(), m.hidden_dim);
            }
        }
    }

    #[test]
    fn lazy_selected_layers_are_bit_identical_to_eager() {
        let b = bench();
        let m = linker();
        let layer_sets = [
            LayerSet::select([0, 7, 19, 21, 29]),
            LayerSet::select([21]),
            LayerSet::select(0..m.n_layers),
        ];
        let mut scratch = SynthScratch::default();
        for inst in b.split.dev.iter().take(20) {
            let mut v1 = Vocab::new();
            let eager = m.generate(inst, &mut v1, LinkTarget::Columns, GenMode::Free);
            for layers in &layer_sets {
                let mut v2 = Vocab::new();
                let lazy = m.generate_with_layers(
                    inst,
                    &mut v2,
                    LinkTarget::Columns,
                    GenMode::Free,
                    layers,
                    &mut scratch,
                );
                assert_eq!(lazy.tokens, eager.tokens);
                assert_eq!(lazy.decisions, eager.decisions);
                for (ls, es) in lazy.steps.iter().zip(&eager.steps) {
                    assert_eq!(ls.softmax_prob, es.softmax_prob);
                    assert_eq!(ls.is_branch, es.is_branch);
                    assert_eq!(ls.hidden.len(), layers.count(m.n_layers));
                    for j in (0..m.n_layers).filter(|&j| layers.contains(j)) {
                        assert_eq!(ls.hidden.layer(j), es.hidden.layer(j), "layer {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn lazy_selected_layers_are_bit_identical_to_eager_under_v1() {
        // The frozen corpus keeps the lazy/eager contract too.
        let b = bench();
        let m = linker().with_corpus(CorpusVersion::V1);
        let layers = LayerSet::select([3, 21]);
        let mut scratch = SynthScratch::default();
        for inst in b.split.dev.iter().take(8) {
            let mut v1 = Vocab::new();
            let eager = m.generate(inst, &mut v1, LinkTarget::Columns, GenMode::Free);
            let mut v2 = Vocab::new();
            let lazy = m.generate_with_layers(
                inst,
                &mut v2,
                LinkTarget::Columns,
                GenMode::Free,
                &layers,
                &mut scratch,
            );
            for (ls, es) in lazy.steps.iter().zip(&eager.steps) {
                for j in [3usize, 21] {
                    assert_eq!(ls.hidden.layer(j), es.hidden.layer(j), "layer {j}");
                }
            }
        }
    }

    #[test]
    fn corpus_versions_share_observables_but_not_hidden_states() {
        let b = bench();
        let m1 = linker().with_corpus(CorpusVersion::V1);
        let m2 = linker(); // default V2
        assert_eq!(m2.corpus(), CorpusVersion::V2);
        let inst = &b.split.dev[0];
        let mut va = Vocab::new();
        let t1 = m1.generate(inst, &mut va, LinkTarget::Columns, GenMode::Free);
        let mut vb = Vocab::new();
        let t2 = m2.generate(inst, &mut vb, LinkTarget::Columns, GenMode::Free);
        // Decisions, tokens, softmax and branch labels are corpus-shared…
        assert_eq!(t1.tokens, t2.tokens);
        assert_eq!(t1.decisions, t2.decisions);
        let mut any_hidden_diff = false;
        for (s1, s2) in t1.steps.iter().zip(&t2.steps) {
            assert_eq!(s1.softmax_prob, s2.softmax_prob);
            assert_eq!(s1.is_branch, s2.is_branch);
            // …while the hidden-state streams are re-keyed.
            any_hidden_diff |= s1.hidden != s2.hidden;
        }
        assert!(any_hidden_diff, "v2 must re-key the hidden-state corpus");
    }

    #[test]
    fn v2_chunked_matches_sequential_reference() {
        let b = bench();
        let chunked = linker();
        let sequential = linker().with_v2_sequential_reference();
        let layer_sets = [
            LayerSet::all(),
            LayerSet::select([0, 7, 19, 21, 29]),
            LayerSet::select([29]),
        ];
        let mut sc = SynthScratch::default();
        let mut ss = SynthScratch::default();
        for inst in b.split.dev.iter().take(8) {
            for layers in &layer_sets {
                let mut va = Vocab::new();
                let a = chunked.generate_with_layers(
                    inst,
                    &mut va,
                    LinkTarget::Columns,
                    GenMode::Free,
                    layers,
                    &mut sc,
                );
                let mut vb = Vocab::new();
                let r = sequential.generate_with_layers(
                    inst,
                    &mut vb,
                    LinkTarget::Columns,
                    GenMode::Free,
                    layers,
                    &mut ss,
                );
                assert_eq!(a.tokens, r.tokens);
                for (sa, sr) in a.steps.iter().zip(&r.steps) {
                    assert_eq!(sa.hidden, sr.hidden);
                }
            }
        }
    }

    #[test]
    fn corpus_version_tags_and_default() {
        assert_eq!(CorpusVersion::default(), CorpusVersion::V2);
        assert_eq!(CorpusVersion::V1.tag(), "v1");
        assert_eq!(CorpusVersion::V2.tag(), "v2");
        let json = serde_json::to_string(&CorpusVersion::V1).unwrap();
        let back: CorpusVersion = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CorpusVersion::V1);
    }

    #[test]
    fn empty_layer_set_synthesizes_nothing_but_keeps_observables() {
        let b = bench();
        let m = linker();
        let inst = &b.split.dev[0];
        let mut v1 = Vocab::new();
        let eager = m.generate(inst, &mut v1, LinkTarget::Tables, GenMode::Free);
        let mut v2 = Vocab::new();
        let mut scratch = SynthScratch::default();
        let lazy = m.generate_with_layers(
            inst,
            &mut v2,
            LinkTarget::Tables,
            GenMode::Free,
            &LayerSet::none(),
            &mut scratch,
        );
        assert_eq!(lazy.tokens, eager.tokens);
        assert_eq!(lazy.predicted_set(), eager.predicted_set());
        for (ls, es) in lazy.steps.iter().zip(&eager.steps) {
            assert_eq!(ls.hidden.len(), 0);
            assert_eq!(ls.softmax_prob, es.softmax_prob);
            assert_eq!(ls.is_branch, es.is_branch);
        }
    }

    #[test]
    #[should_panic(expected = "not synthesized")]
    fn reading_an_unsynthesized_layer_panics() {
        let b = bench();
        let m = linker();
        let inst = &b.split.dev[0];
        let mut vocab = Vocab::new();
        let mut scratch = SynthScratch::default();
        let lazy = m.generate_with_layers(
            inst,
            &mut vocab,
            LinkTarget::Tables,
            GenMode::Free,
            &LayerSet::select([3, 5]),
            &mut scratch,
        );
        let _ = lazy.steps[0].hidden.layer(4);
    }

    #[test]
    fn layer_set_api_contract() {
        let all = LayerSet::all();
        assert!(all.is_all() && all.contains(29));
        assert_eq!(all.count(30), 30);
        let none = LayerSet::none();
        assert!(!none.is_all() && !none.contains(0));
        assert_eq!(none.count(30), 0);
        // Unsorted, duplicated input is normalised.
        let sel = LayerSet::select([9, 2, 9, 21]);
        assert_eq!(sel.count(30), 3);
        assert!(sel.contains(2) && sel.contains(9) && sel.contains(21));
        assert!(!sel.contains(10));
    }

    #[test]
    fn lazy_stack_reports_layer_indices() {
        let b = bench();
        let m = linker();
        let inst = &b.split.dev[0];
        let mut vocab = Vocab::new();
        let mut scratch = SynthScratch::default();
        let lazy = m.generate_with_layers(
            inst,
            &mut vocab,
            LinkTarget::Tables,
            GenMode::Free,
            &LayerSet::select([4, 17, 22]),
            &mut scratch,
        );
        let stack = &lazy.steps[0].hidden;
        assert_eq!(stack.layer_indices().collect::<Vec<_>>(), vec![4, 17, 22]);
        assert!(stack.has_layer(17) && !stack.has_layer(16));
        // Row iteration pairs with layer_indices.
        for (row, j) in stack.iter().zip(stack.layer_indices()) {
            assert_eq!(row, stack.layer(j));
        }
    }

    #[test]
    fn softmax_is_overconfident_for_both_classes() {
        let b = bench();
        let m = linker();
        let mut branch_probs = Vec::new();
        let mut clean_probs = Vec::new();
        for inst in b.split.dev.iter().take(120) {
            let mut vocab = Vocab::new();
            let t = m.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::TeacherForced);
            for s in &t.steps {
                if s.is_branch {
                    branch_probs.push(s.softmax_prob);
                } else {
                    clean_probs.push(s.softmax_prob);
                }
            }
        }
        assert!(!branch_probs.is_empty());
        let mean_b: f64 = branch_probs.iter().sum::<f64>() / branch_probs.len() as f64;
        let mean_c: f64 = clean_probs.iter().sum::<f64>() / clean_probs.len() as f64;
        // Both concentrated near 1 — the Fig 3a phenomenon that makes
        // logit thresholding useless.
        assert!(mean_b > 0.93, "branch softmax mean {mean_b}");
        assert!(mean_c > 0.97, "clean softmax mean {mean_c}");
    }

    #[test]
    fn risk_signal_is_linearly_separable_at_good_layers() {
        // Project hidden states onto the true direction at the peak
        // layer: branch tokens must score visibly higher. (Probes will
        // have to *learn* this; here we verify the signal exists.)
        let b = bench();
        let m = linker();
        let best_layer = (0..m.n_layers)
            .max_by(|&a, &b| m.layer_gains()[a].total_cmp(&m.layer_gains()[b]))
            .unwrap();
        let dir = m.layer_dirs[best_layer].clone();
        let mut branch_scores = Vec::new();
        let mut clean_scores = Vec::new();
        for inst in b.split.dev.iter().take(150) {
            let mut vocab = Vocab::new();
            let t = m.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::TeacherForced);
            for s in &t.steps {
                let proj: f64 = s.hidden[best_layer]
                    .iter()
                    .zip(dir.iter())
                    .map(|(&h, &d)| (h * d) as f64)
                    .sum();
                if s.is_branch {
                    branch_scores.push(proj);
                } else {
                    clean_scores.push(proj);
                }
            }
        }
        let labels: Vec<bool> = branch_scores
            .iter()
            .map(|_| true)
            .chain(clean_scores.iter().map(|_| false))
            .collect();
        let scores: Vec<f64> = branch_scores.into_iter().chain(clean_scores).collect();
        let auc = tinynn::metrics::auc(&scores, &labels);
        assert!(auc > 0.93, "oracle-direction AUC {auc}");
    }

    #[test]
    fn early_layers_carry_little_signal() {
        let m = linker();
        let gains = m.layer_gains();
        assert!(gains[0] < 0.2, "layer 0 gain {}", gains[0]);
        let peak = gains.iter().cloned().fold(0.0_f64, f64::max);
        assert!(peak > 0.8, "peak gain {peak}");
        // Peak sits in the back half of the network.
        let peak_idx = gains.iter().position(|&g| g == peak).unwrap();
        assert!(peak_idx > m.n_layers / 2);
    }

    #[test]
    fn generation_is_fully_deterministic() {
        let b = bench();
        let m = linker();
        let inst = &b.split.dev[3];
        let mut v1 = Vocab::new();
        let mut v2 = Vocab::new();
        let a = m.generate(inst, &mut v1, LinkTarget::Columns, GenMode::Free);
        let c = m.generate(inst, &mut v2, LinkTarget::Columns, GenMode::Free);
        assert_eq!(a.tokens, c.tokens);
        assert_eq!(a.steps[0].hidden, c.steps[0].hidden);
        assert_eq!(a.steps[0].softmax_prob, c.steps[0].softmax_prob);
    }

    #[test]
    fn bird_table_em_is_near_paper_operating_point() {
        // Table 2 reports 79.70% table EM on BIRD. The simulator should
        // land in the same regime; small scaled benchmarks carry wide
        // sampling error, so evaluate on dev + test and allow a broad
        // band (the full-scale harness pins the exact operating point).
        let b = BenchmarkProfile::bird_like().scaled(0.05).generate(2024);
        let m = linker();
        let mut correct = 0usize;
        let mut total = 0usize;
        for inst in b.split.dev.iter().chain(b.split.test.iter()) {
            let mut vocab = Vocab::new();
            let t = m.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
            if t.predicted_set() == inst.gold_tables {
                correct += 1;
            }
            total += 1;
        }
        let em = correct as f64 / total as f64;
        assert!((0.62..=0.95).contains(&em), "table EM {em}");
    }
}

//! Competence profiles: the per-benchmark calibration of the simulated
//! fine-tuned linker.
//!
//! A fine-tuned model's error rate is a property of (model, benchmark).
//! The paper's Table 2 fixes the operating points we must land near:
//!
//! | Benchmark | Table EM | Column EM |
//! |---|---|---|
//! | BIRD       | 79.70 | 75.32 |
//! | Spider-dev | 93.71 | 88.98 |
//!
//! The per-link error probability is
//! `clamp(scale · (0.25 + 0.75·hardness) · (1 − e^{−mass}) + floor, 0, cap)`
//! where `mass` is the link's confusion mass and `hardness` the
//! instance latent. The scales below were tuned once against the
//! generated workloads; the experiment harness reports the achieved EM
//! next to the paper's.

use serde::{Deserialize, Serialize};

/// Error-process calibration for one (model, benchmark) pair.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CompetenceProfile {
    /// Scale of the per-link error probability for table links.
    pub table_scale: f64,
    /// Scale for column links.
    pub column_scale: f64,
    /// Error floor (irreducible slip rate) per link.
    pub floor: f64,
    /// Per-link error probability cap.
    pub cap: f64,
    /// Of the errors: probability mass of substitution vs omit vs add.
    pub p_substitute: f64,
    pub p_omit: f64,
    // p_add is the remainder.
}

impl CompetenceProfile {
    /// Calibrated profile for a benchmark tag ("bird" / "spider").
    pub fn for_benchmark(name: &str) -> Self {
        match name {
            "bird" => Self {
                table_scale: 0.80,
                column_scale: 0.68,
                floor: 0.010,
                cap: 0.60,
                p_substitute: 0.42,
                p_omit: 0.08,
            },
            "spider" => Self {
                table_scale: 0.29,
                column_scale: 0.47,
                floor: 0.012,
                cap: 0.50,
                p_substitute: 0.42,
                p_omit: 0.08,
            },
            other => panic!("no competence profile for benchmark {other}"),
        }
    }

    /// Per-link error probability. The strong hardness weighting
    /// concentrates errors in hard instances, which is what couples
    /// table-linking and column-linking failures (the overlap the paper
    /// observes between the two stages' abstentions in §4.3).
    pub fn link_error_prob(&self, is_table: bool, hardness: f64, confusion_mass: f64) -> f64 {
        let scale = if is_table {
            self.table_scale
        } else {
            self.column_scale
        };
        let driver = (0.10 + 1.20 * hardness) * (1.0 - (-confusion_mass).exp());
        (scale * driver + self.floor).clamp(0.0, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bird_is_harder_than_spider() {
        let bird = CompetenceProfile::for_benchmark("bird");
        let spider = CompetenceProfile::for_benchmark("spider");
        assert!(bird.table_scale > spider.table_scale);
        assert!(bird.column_scale > spider.column_scale);
    }

    #[test]
    fn error_prob_monotone_in_hardness_and_mass() {
        let p = CompetenceProfile::for_benchmark("bird");
        assert!(p.link_error_prob(true, 0.8, 1.0) > p.link_error_prob(true, 0.2, 1.0));
        assert!(p.link_error_prob(true, 0.5, 1.5) > p.link_error_prob(true, 0.5, 0.2));
        // No confusables → only the floor remains.
        let base = p.link_error_prob(true, 0.9, 0.0);
        assert!((base - p.floor).abs() < 1e-12);
    }

    #[test]
    fn error_prob_is_capped() {
        let p = CompetenceProfile::for_benchmark("bird");
        assert!(p.link_error_prob(true, 1.0, 100.0) <= p.cap);
    }

    #[test]
    #[should_panic(expected = "no competence profile")]
    fn unknown_benchmark_panics() {
        let _ = CompetenceProfile::for_benchmark("wikisql");
    }
}

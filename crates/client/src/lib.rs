//! `rts-client` — the typed TCP client for `rts-served`.
//!
//! [`RtsClient`] speaks the framed wire protocol of
//! [`rts_serve::wire`] (see `PROTOCOL.md`) and implements the same
//! [`Engine`] trait as the in-process engines, so every generic driver
//! — [`rts_serve::drive_closed_loop`], the workload client pool, the
//! parity tests — runs unchanged against a remote server. The ticket
//! is the client-chosen request id (`u64`).
//!
//! # Reconnect & resume
//!
//! The client owns one connection and repairs it transparently: a
//! dropped socket triggers a redial with `Hello { resume }`, and the
//! server re-attaches the same session — live tickets keep working,
//! parked feedback queries are re-delivered, and a submit whose ack
//! was lost in flight is re-sent (the server replays the recorded ack,
//! so admission stays exactly-once). While the client is away the
//! server's clocks keep running: a feedback deadline that lapses
//! mid-disconnect degrades the request to abstention, and the resumed
//! client simply observes `Done` with `timed_out` set.
//!
//! Degrade-only applies here too: when the connection cannot be
//! repaired (server gone, version/fingerprint mismatch, session
//! expired) the client *fails typed, never panics* — submits return
//! [`SubmitError::Unavailable`], event waits report the ticket
//! retired, stats read empty. The terminal error is kept in
//! [`RtsClient::fatal`] for the caller to inspect.

use parking_lot::{Condvar, Mutex};
use rts_serve::wire::{read_frame, write_frame, ClientMsg, ServerMsg, WIRE_VERSION};
use rts_serve::{
    ClientEvent, Engine, EngineError, ResolveError, ServingStats, SubmitError, TenantId,
};
use simlm::LinkTarget;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use rts_core::session::{FlagQuery, FlagResolution};

/// Redial attempts before the client declares the server gone.
const REDIAL_ATTEMPTS: usize = 8;
/// Backoff between redial attempts.
const REDIAL_BACKOFF: Duration = Duration::from_millis(25);
/// Condvar re-check interval while waiting for mail (bounds how long a
/// waiter can miss a `dead` transition it must react to).
const MAIL_POLL: Duration = Duration::from_millis(50);

struct MailState {
    /// The live connection, if any. Writers write through it directly
    /// (frames are small; the lock is held across the write).
    stream: Option<TcpStream>,
    /// Per-request inbox: every `ServerMsg` carrying this request id,
    /// in arrival order.
    mail: HashMap<u64, VecDeque<ServerMsg>>,
    /// The last unanswered feedback query per submit request — what a
    /// level-triggered [`Engine::wait_event`] re-poll returns without
    /// another round trip.
    pending_query: HashMap<u64, (LinkTarget, FlagQuery)>,
    /// Submit requests that reached `Done`/`Retired`; later waits read
    /// `Retired` and stray re-deliveries are dropped.
    finished: HashSet<u64>,
    /// Session id from the first `HelloAck` — the resume token.
    session: Option<u64>,
    /// Corpus fingerprint the server reported.
    fingerprint: Option<String>,
    /// The connection is known broken; the next operation redials.
    dead: bool,
    /// Bumped per successful dial; a reader whose generation is stale
    /// must not clobber the new connection's state.
    generation: u64,
    /// A thread is already redialing; others wait on the bell.
    reconnecting: bool,
    /// Terminal failure — reconnection is pointless (version or
    /// fingerprint mismatch, expired session, server gone for good).
    fatal: Option<EngineError>,
}

struct ClientInner {
    addr: String,
    /// Fingerprint the caller requires the server to match, if any.
    expect: Option<String>,
    next_req: AtomicU64,
    client_state: Mutex<MailState>,
    bell: Condvar,
}

/// A connection to `rts-served`, usable from many threads at once.
pub struct RtsClient {
    inner: Arc<ClientInner>,
}

impl Clone for RtsClient {
    fn clone(&self) -> Self {
        RtsClient {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of one dial attempt.
enum Dial {
    Ok {
        stream: TcpStream,
        session: u64,
        fingerprint: String,
    },
    /// Transport-level failure: worth retrying.
    Retry(EngineError),
    /// Protocol-level rejection: retrying cannot help.
    Fatal(EngineError),
}

fn dial(addr: &str, expect: Option<&str>, resume: Option<u64>) -> Dial {
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            return Dial::Retry(EngineError::Transport {
                detail: format!("connect {addr}: {e}"),
            })
        }
    };
    let _ = stream.set_nodelay(true);
    if let Err(e) = write_frame(
        &mut stream,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
            resume,
        },
    ) {
        return Dial::Retry(e.into());
    }
    match read_frame::<_, ServerMsg>(&mut stream) {
        Ok(Some(ServerMsg::HelloAck {
            version,
            session,
            fingerprint,
        })) => {
            if version != WIRE_VERSION {
                return Dial::Fatal(EngineError::Version {
                    server: version,
                    client: WIRE_VERSION,
                });
            }
            if let Some(expect) = expect {
                if expect != fingerprint {
                    return Dial::Fatal(EngineError::Fingerprint {
                        server: fingerprint,
                        client: expect.to_string(),
                    });
                }
            }
            Dial::Ok {
                stream,
                session,
                fingerprint,
            }
        }
        Ok(Some(ServerMsg::Fault { error })) => match error {
            e @ (EngineError::Version { .. }
            | EngineError::Fingerprint { .. }
            | EngineError::UnknownSession { .. }) => Dial::Fatal(e),
            e => Dial::Retry(e),
        },
        Ok(Some(other)) => Dial::Fatal(EngineError::Protocol {
            detail: format!("expected HelloAck, got {other:?}"),
        }),
        Ok(None) => Dial::Retry(EngineError::Transport {
            detail: "server closed during handshake".to_string(),
        }),
        Err(e) => Dial::Retry(e.into()),
    }
}

impl RtsClient {
    /// Connect and handshake. `expect` pins the corpus fingerprint the
    /// server must report (pass the local
    /// [`rts_serve::wire::corpus_fingerprint`] so instance ids are
    /// guaranteed to mean the same thing on both ends).
    pub fn connect(addr: &str, expect: Option<&str>) -> Result<RtsClient, EngineError> {
        let client = RtsClient {
            inner: Arc::new(ClientInner {
                addr: addr.to_string(),
                expect: expect.map(str::to_string),
                next_req: AtomicU64::new(1),
                client_state: Mutex::new(MailState {
                    stream: None,
                    mail: HashMap::new(),
                    pending_query: HashMap::new(),
                    finished: HashSet::new(),
                    session: None,
                    fingerprint: None,
                    dead: true,
                    generation: 0,
                    reconnecting: false,
                    fatal: None,
                }),
                bell: Condvar::new(),
            }),
        };
        match client.ensure_conn() {
            Ok(()) => Ok(client),
            Err(e) => Err(e),
        }
    }

    /// The session id granted by the server (resume token).
    pub fn session_id(&self) -> Option<u64> {
        self.inner.client_state.lock().session
    }

    /// The corpus fingerprint the server reported at handshake.
    pub fn fingerprint(&self) -> Option<String> {
        self.inner.client_state.lock().fingerprint.clone()
    }

    /// The terminal error, if the client has given up on the server.
    pub fn fatal(&self) -> Option<EngineError> {
        self.inner.client_state.lock().fatal.clone()
    }

    /// Test hook: sever the TCP connection as a fault would, without
    /// telling the server (the session parks; the next operation
    /// redials and resumes).
    pub fn drop_connection(&self) {
        let mut st = self.inner.client_state.lock();
        if let Some(stream) = st.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        st.dead = true;
        self.inner.bell.notify_all();
    }

    /// Politely end the session: the server retires it (no resume).
    /// Also sent on drop, best-effort.
    pub fn bye(&self) {
        let mut st = self.inner.client_state.lock();
        if let Some(stream) = st.stream.take() {
            let mut w = &stream;
            let _ = write_frame(&mut w, &ClientMsg::Bye);
            let _ = stream.shutdown(Shutdown::Both);
        }
        st.dead = true;
        if st.fatal.is_none() {
            st.fatal = Some(EngineError::Transport {
                detail: "client closed".to_string(),
            });
        }
        self.inner.bell.notify_all();
    }

    /// Make sure a live connection exists, redialing (with resume) if
    /// needed. Returns the fatal error once the client has given up.
    fn ensure_conn(&self) -> Result<(), EngineError> {
        loop {
            // Fast path / wait-for-the-dialer path.
            {
                let mut st = self.inner.client_state.lock();
                if let Some(e) = &st.fatal {
                    return Err(e.clone());
                }
                if !st.dead && st.stream.is_some() {
                    return Ok(());
                }
                if st.reconnecting {
                    self.inner
                        .bell
                        .wait_for(&mut st, Duration::from_millis(100));
                    continue;
                }
                st.reconnecting = true;
            }
            // This thread dials, lock released.
            let (addr, expect, resume) = {
                let st = self.inner.client_state.lock();
                (
                    self.inner.addr.clone(),
                    self.inner.expect.clone(),
                    st.session,
                )
            };
            let mut outcome = Dial::Retry(EngineError::Transport {
                detail: "no dial attempted".to_string(),
            });
            for attempt in 0..REDIAL_ATTEMPTS {
                outcome = dial(&addr, expect.as_deref(), resume);
                match &outcome {
                    Dial::Ok { .. } | Dial::Fatal(_) => break,
                    Dial::Retry(_) => {
                        if attempt + 1 < REDIAL_ATTEMPTS {
                            std::thread::sleep(REDIAL_BACKOFF);
                        }
                    }
                }
            }
            let mut st = self.inner.client_state.lock();
            st.reconnecting = false;
            match outcome {
                Dial::Ok {
                    stream,
                    session,
                    fingerprint,
                } => {
                    let Ok(reader_stream) = stream.try_clone() else {
                        st.dead = true;
                        self.inner.bell.notify_all();
                        continue;
                    };
                    st.stream = Some(stream);
                    st.session = Some(session);
                    st.fingerprint = Some(fingerprint);
                    st.dead = false;
                    st.generation += 1;
                    let generation = st.generation;
                    self.inner.bell.notify_all();
                    drop(st);
                    // The reader holds only a weak handle so `Drop` on
                    // the last client can see itself as the last owner.
                    let inner = Arc::downgrade(&self.inner);
                    std::thread::spawn(move || reader_loop(&inner, reader_stream, generation));
                    return Ok(());
                }
                Dial::Retry(e) | Dial::Fatal(e) => {
                    st.fatal = Some(e.clone());
                    self.inner.bell.notify_all();
                    return Err(e);
                }
            }
        }
    }

    fn fresh_req(&self) -> u64 {
        self.inner.next_req.fetch_add(1, Ordering::SeqCst)
    }

    /// Write one frame on the live connection, repairing it first.
    /// A failed write marks the connection dead and retries, so a send
    /// either lands on *some* connection of the session or returns the
    /// fatal error.
    fn send(&self, msg: &ClientMsg) -> Result<(), EngineError> {
        loop {
            self.ensure_conn()?;
            let mut st = self.inner.client_state.lock();
            let Some(stream) = &st.stream else {
                continue;
            };
            let mut w = stream;
            match write_frame(&mut w, msg) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    st.dead = true;
                    st.stream = None;
                    self.inner.bell.notify_all();
                }
            }
        }
    }

    /// Wait for mail on `req` matching `pick`, re-sending `msg` after
    /// every reconnect (all re-sendable messages are idempotent on the
    /// server: submit acks are replayed, duplicate resolves read
    /// `Stale`, stats/invalidate are reads). Non-matching mail is left
    /// queued for its own consumer.
    fn call(
        &self,
        req: u64,
        msg: &ClientMsg,
        pick: impl Fn(&ServerMsg) -> bool,
    ) -> Result<ServerMsg, EngineError> {
        self.send(msg)?;
        loop {
            {
                let mut st = self.inner.client_state.lock();
                if let Some(queue) = st.mail.get_mut(&req) {
                    if let Some(pos) = queue.iter().position(&pick) {
                        let Some(found) = queue.remove(pos) else {
                            continue;
                        };
                        if queue.is_empty() {
                            st.mail.remove(&req);
                        }
                        return Ok(found);
                    }
                }
                if let Some(e) = &st.fatal {
                    return Err(e.clone());
                }
                if !st.dead {
                    self.inner.bell.wait_for(&mut st, MAIL_POLL);
                    continue;
                }
            }
            // Connection died since we sent: repair and re-send.
            self.send(msg)?;
        }
    }
}

impl Drop for RtsClient {
    fn drop(&mut self) {
        if Arc::strong_count(&self.inner) == 1 {
            self.bye();
        }
    }
}

/// Route incoming frames into per-request mailboxes until the
/// connection dies. One per connection generation; a stale reader
/// (superseded by a reconnect) exits without touching state.
fn reader_loop(weak: &Weak<ClientInner>, mut stream: TcpStream, generation: u64) {
    loop {
        let msg = match read_frame::<_, ServerMsg>(&mut stream) {
            Ok(Some(msg)) => msg,
            Ok(None) | Err(_) => {
                let Some(inner) = weak.upgrade() else { return };
                let mut st = inner.client_state.lock();
                if st.generation == generation {
                    st.dead = true;
                    st.stream = None;
                    inner.bell.notify_all();
                }
                return;
            }
        };
        let Some(inner) = weak.upgrade() else { return };
        let mut st = inner.client_state.lock();
        if st.generation != generation {
            return;
        }
        let req = match &msg {
            ServerMsg::HelloAck { .. } => {
                // Handshake frames are consumed in `dial`; one here is
                // a protocol violation.
                st.dead = true;
                st.stream = None;
                inner.bell.notify_all();
                return;
            }
            ServerMsg::Fault { error } => {
                // Handshake-level faults are terminal; anything else
                // (protocol/transport fault) closes this connection
                // and the session can still resume.
                if let e @ (EngineError::Version { .. }
                | EngineError::Fingerprint { .. }
                | EngineError::UnknownSession { .. }) = error
                {
                    st.fatal = Some(e.clone());
                }
                st.dead = true;
                st.stream = None;
                inner.bell.notify_all();
                return;
            }
            ServerMsg::Submitted { req }
            | ServerMsg::SubmitFailed { req, .. }
            | ServerMsg::Resolved { req }
            | ServerMsg::ResolveFailed { req, .. }
            | ServerMsg::Stats { req, .. }
            | ServerMsg::Invalidated { req, .. } => *req,
            ServerMsg::NeedsFeedback { req, target, query } => {
                st.pending_query.insert(*req, (*target, query.clone()));
                *req
            }
            ServerMsg::Done { req, .. } | ServerMsg::Retired { req } => {
                st.pending_query.remove(req);
                *req
            }
        };
        // Re-deliveries for settled requests are expected after a
        // resume; drop them instead of growing dead mailboxes.
        if st.finished.contains(&req) {
            continue;
        }
        st.mail.entry(req).or_default().push_back(msg);
        inner.bell.notify_all();
    }
}

impl Engine for RtsClient {
    type Ticket = u64;

    fn submit(&self, tenant: TenantId, inst: &benchgen::Instance) -> Result<u64, SubmitError> {
        let req = self.fresh_req();
        let msg = ClientMsg::Submit {
            req,
            tenant,
            instance: inst.id,
        };
        let reply = self.call(req, &msg, |m| {
            matches!(
                m,
                ServerMsg::Submitted { .. } | ServerMsg::SubmitFailed { .. }
            )
        });
        match reply {
            Ok(ServerMsg::Submitted { .. }) => Ok(req),
            Ok(ServerMsg::SubmitFailed { error, .. }) => Err(error.into()),
            Ok(other) => Err(SubmitError::Unavailable {
                detail: format!("unexpected submit reply {other:?}"),
            }),
            Err(e) => Err(e.into()),
        }
    }

    fn wait_event(&self, ticket: u64) -> ClientEvent {
        loop {
            {
                let mut st = self.inner.client_state.lock();
                // Consume the next event for this ticket, if any.
                let popped = st.mail.get_mut(&ticket).and_then(VecDeque::pop_front);
                if let Some(msg) = popped {
                    if st.mail.get(&ticket).is_some_and(VecDeque::is_empty) {
                        st.mail.remove(&ticket);
                    }
                    match msg {
                        ServerMsg::NeedsFeedback { target, query, .. } => {
                            return ClientEvent::NeedsFeedback { target, query }
                        }
                        ServerMsg::Done { outcome, .. } => {
                            st.finished.insert(ticket);
                            st.mail.remove(&ticket);
                            return ClientEvent::Done(outcome.into());
                        }
                        ServerMsg::Retired { .. } => {
                            st.finished.insert(ticket);
                            st.mail.remove(&ticket);
                            return ClientEvent::Retired;
                        }
                        // Stray submit-ack re-deliveries; skip.
                        _ => continue,
                    }
                }
                if st.finished.contains(&ticket) {
                    return ClientEvent::Retired;
                }
                // Level-triggered re-poll: an unanswered flag is
                // returned again without a round trip, like the
                // in-process engines do.
                if let Some((target, query)) = st.pending_query.get(&ticket) {
                    return ClientEvent::NeedsFeedback {
                        target: *target,
                        query: query.clone(),
                    };
                }
                if st.fatal.is_some() {
                    // Degrade, never panic from inside the engine API:
                    // the ticket is unreachable, which is what Retired
                    // means. The terminal error stays in `fatal()`.
                    return ClientEvent::Retired;
                }
                if !st.dead {
                    self.inner.bell.wait_for(&mut st, MAIL_POLL);
                    continue;
                }
            }
            // Dead connection: resume. The server re-pushes pending
            // feedback, so the loop above will see it.
            if self.ensure_conn().is_err() {
                return ClientEvent::Retired;
            }
        }
    }

    fn wait_event_changed(&self, ticket: u64, last_seen: Option<&FlagQuery>) -> ClientEvent {
        loop {
            // Skip the level-triggered cache when it is exactly the
            // query the caller already holds.
            {
                let mut st = self.inner.client_state.lock();
                let unchanged = st.mail.get(&ticket).is_none_or(VecDeque::is_empty)
                    && !st.finished.contains(&ticket)
                    && st.fatal.is_none()
                    && !st.dead
                    && match (last_seen, st.pending_query.get(&ticket)) {
                        (Some(last), Some((_, q))) => q == last,
                        (Some(_), None) => true,
                        (None, _) => false,
                    };
                if unchanged {
                    self.inner.bell.wait_for(&mut st, MAIL_POLL);
                    continue;
                }
            }
            match self.wait_event(ticket) {
                ClientEvent::NeedsFeedback { target, query } => {
                    if last_seen != Some(&query) {
                        return ClientEvent::NeedsFeedback { target, query };
                    }
                    // The cached query resurfaced; keep waiting for a
                    // genuinely new state.
                    let mut st = self.inner.client_state.lock();
                    self.inner.bell.wait_for(&mut st, MAIL_POLL);
                }
                done => return done,
            }
        }
    }

    fn resolve(
        &self,
        ticket: u64,
        query: &FlagQuery,
        resolution: FlagResolution,
    ) -> Result<(), ResolveError> {
        {
            let st = self.inner.client_state.lock();
            if st.finished.contains(&ticket) {
                return Err(ResolveError::Retired);
            }
        }
        let req = self.fresh_req();
        let msg = ClientMsg::Resolve {
            req,
            ticket,
            query: query.clone(),
            resolution,
        };
        let reply = self.call(req, &msg, |m| {
            matches!(
                m,
                ServerMsg::Resolved { .. } | ServerMsg::ResolveFailed { .. }
            )
        });
        // Whatever the verdict, this query is no longer the ticket's
        // pending state: drop the level-trigger cache so the next wait
        // blocks for fresh mail instead of replaying it.
        {
            let mut st = self.inner.client_state.lock();
            if st
                .pending_query
                .get(&ticket)
                .is_some_and(|(_, q)| q == query)
            {
                st.pending_query.remove(&ticket);
            }
        }
        match reply {
            Ok(ServerMsg::Resolved { .. }) => Ok(()),
            Ok(ServerMsg::ResolveFailed { error, .. }) => Err(error.into()),
            Ok(other) => Err(ResolveError::Unavailable {
                detail: format!("unexpected resolve reply {other:?}"),
            }),
            Err(e) => Err(e.into()),
        }
    }

    fn stats(&self) -> ServingStats {
        let req = self.fresh_req();
        let reply = self.call(req, &ClientMsg::Stats { req }, |m| {
            matches!(m, ServerMsg::Stats { .. })
        });
        match reply {
            Ok(ServerMsg::Stats { stats, .. }) => stats,
            // Degrade: an unreachable server reads as an empty engine.
            _ => ServingStats::default(),
        }
    }

    fn invalidate_db(&self, db: &str) -> usize {
        let req = self.fresh_req();
        let msg = ClientMsg::InvalidateDb {
            req,
            database: db.to_string(),
        };
        let reply = self.call(req, &msg, |m| matches!(m, ServerMsg::Invalidated { .. }));
        match reply {
            Ok(ServerMsg::Invalidated { dropped, .. }) => dropped,
            _ => 0,
        }
    }

    fn set_tenant_weight(&self, tenant: TenantId, weight: u32) {
        let _ = self.send(&ClientMsg::SetTenantWeight { tenant, weight });
    }

    fn shutdown(&self) {
        let _ = self.send(&ClientMsg::Shutdown);
    }
}

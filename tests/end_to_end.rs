//! Cross-crate integration tests: the full RTS stack from workload
//! generation through monitored linking to executed SQL.

use rts::benchgen::BenchmarkProfile;
use rts::core::abstention::{run_rts_linking, MitigationPolicy, RtsConfig};
use rts::core::bpp::{Mbpp, MbppConfig};
use rts::core::branching::BranchDataset;
use rts::core::human::{Expertise, HumanOracle};
use rts::core::metrics::linking_metrics;
use rts::core::pipeline::{measure_ex, SchemaSource};
use rts::core::sqlgen::SqlGenModel;
use rts::simlm::{GenMode, LinkTarget, SchemaLinker, Vocab};

fn fixture() -> (rts::benchgen::Benchmark, SchemaLinker, Mbpp) {
    let bench = BenchmarkProfile::bird_like().scaled(0.05).generate(999);
    let linker = SchemaLinker::new("bird", 4);
    let ds = BranchDataset::build(&linker, &bench.split.train, LinkTarget::Tables, 400);
    let mbpp = Mbpp::train(&ds, &MbppConfig::default());
    (bench, linker, mbpp)
}

#[test]
fn generated_benchmark_is_internally_consistent() {
    let bench = BenchmarkProfile::spider_like().scaled(0.03).generate(5);
    for inst in bench.all_instances() {
        // Gold SQL executes and gold links resolve on every instance.
        let db = bench.database(&inst.db_name).expect("db");
        rts::nanosql::exec::execute(db, &inst.gold_sql).expect("gold sql executes");
        let meta = bench.meta(&inst.db_name).expect("meta");
        for t in &inst.gold_tables {
            assert!(meta.table(t).is_some());
        }
        for (t, c) in &inst.gold_columns {
            assert!(meta.table(t).and_then(|tm| tm.column(c)).is_some());
        }
        // The printed gold SQL round-trips through the parser.
        let printed = inst.gold_sql.to_string();
        let reparsed = rts::nanosql::parser::parse(&printed).expect("reparse");
        assert_eq!(reparsed, inst.gold_sql);
    }
}

#[test]
fn linker_traces_are_probe_compatible() {
    let (bench, linker, mbpp) = fixture();
    let inst = &bench.split.dev[0];
    let mut vocab = Vocab::new();
    let trace = linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
    let mut rng = tinyseed();
    let flags = mbpp.flag_trace(&trace, &mut rng);
    assert_eq!(flags.len(), trace.steps.len());
}

fn tinyseed() -> rts::tinynn::rng::SplitMix64 {
    rts::tinynn::rng::SplitMix64::new(77)
}

#[test]
fn rts_with_expert_feedback_beats_unmonitored_linking() {
    let (bench, linker, mbpp) = fixture();
    let oracle = HumanOracle::new(Expertise::Expert, 12);
    let config = RtsConfig::default();
    let dev = &bench.split.dev;

    let mut golds = Vec::new();
    let mut free_preds = Vec::new();
    let mut rts_preds = Vec::new();
    for inst in dev {
        let mut gold = inst.gold_tables.clone();
        gold.sort();
        golds.push(gold);
        let mut vocab = Vocab::new();
        let free = linker.generate(inst, &mut vocab, LinkTarget::Tables, GenMode::Free);
        free_preds.push(free.predicted_set());
        let meta = bench.meta(&inst.db_name).expect("meta");
        let out = run_rts_linking(
            &linker,
            &mbpp,
            inst,
            meta,
            LinkTarget::Tables,
            &MitigationPolicy::Human(&oracle),
            &config,
        );
        assert!(!out.abstained, "human policy resolves in-place");
        rts_preds.push(out.predicted);
    }
    let free_m = linking_metrics(&golds, &free_preds);
    let rts_m = linking_metrics(&golds, &rts_preds);
    assert!(
        rts_m.exact_match > free_m.exact_match,
        "RTS {:.3} must beat free {:.3}",
        rts_m.exact_match,
        free_m.exact_match
    );
}

#[test]
fn golden_schema_dominates_full_schema_ex() {
    let bench = BenchmarkProfile::bird_like().scaled(0.03).generate(321);
    let generator = SqlGenModel::deepseek_7b("bird", 5);
    let dev = &bench.split.dev;
    let golden = measure_ex(&bench, dev, &generator, &SchemaSource::Golden);
    let full = measure_ex(&bench, dev, &generator, &SchemaSource::Full);
    assert!(golden > full, "golden {golden} vs full {full}");
}

#[test]
fn deterministic_across_full_stack() {
    let run = || {
        let (bench, linker, mbpp) = fixture();
        let inst = &bench.split.dev[1];
        let meta = bench.meta(&inst.db_name).expect("meta");
        let out = run_rts_linking(
            &linker,
            &mbpp,
            inst,
            meta,
            LinkTarget::Tables,
            &MitigationPolicy::AbstainOnly,
            &RtsConfig::default(),
        );
        (out.abstained, out.predicted, out.n_flags)
    };
    assert_eq!(run(), run());
}

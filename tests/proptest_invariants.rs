//! Property-based tests over the core invariants of the stack:
//! conformal set algebra and merge theorems, SQL parser round-trips,
//! result-comparison symmetry, and tokenizer inversion.

use proptest::prelude::*;
use rts::conformal::merge::majority_vote_inclusive;
use rts::conformal::{majority_vote, random_permutation_merge, LabelSet, SplitConformal};
use rts::nanosql::value::Value;
use rts::simlm::vocab::split_identifier;
use rts::tinynn::rng::SplitMix64;

fn label_set_strategy(n_labels: usize) -> impl Strategy<Value = LabelSet> {
    prop::collection::vec(prop::bool::ANY, n_labels).prop_map(|bits| {
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    })
}

proptest! {
    /// Theorem 2: |C_θ| ≤ (1/(nθ)) Σ|C_i| for arbitrary set families.
    #[test]
    fn theorem2_size_bound(
        sets in prop::collection::vec(label_set_strategy(6), 1..12),
        theta in 0.05f64..0.95,
    ) {
        let merged = majority_vote(&sets, theta, 6);
        let sum: usize = sets.iter().map(|s| s.len()).sum();
        prop_assert!(merged.len() as f64 <= sum as f64 / (sets.len() as f64 * theta) + 1e-9);
    }

    /// Theorem 3 (size part): C_π ⊆ inclusive majority vote at θ = ½.
    #[test]
    fn permutation_merge_never_exceeds_majority(
        sets in prop::collection::vec(label_set_strategy(4), 1..10),
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let merged = random_permutation_merge(&sets, 4, &mut rng);
        let vote = majority_vote_inclusive(&sets, 4);
        prop_assert!(merged.is_subset_of(vote), "{merged} ⊄ {vote}");
    }

    /// Monotonicity: a lower error level can only widen prediction sets.
    #[test]
    fn conformal_sets_grow_as_alpha_shrinks(
        scores in prop::collection::vec(0.0f64..1.0, 30..200),
        p1 in 0.0f64..1.0,
    ) {
        let tight = SplitConformal::from_scores(scores.clone(), 0.2);
        let loose = SplitConformal::from_scores(scores, 0.05);
        let set_tight = tight.predict_binary(p1);
        let set_loose = loose.predict_binary(p1);
        prop_assert!(set_tight.is_subset_of(set_loose));
    }

    /// The split-conformal threshold is one of the calibration scores
    /// (or +∞), never an interpolation artefact.
    #[test]
    fn conformal_threshold_is_order_statistic(
        scores in prop::collection::vec(0.0f64..1.0, 20..100),
        alpha in 0.05f64..0.4,
    ) {
        let cp = SplitConformal::from_scores(scores.clone(), alpha);
        let t = cp.threshold();
        prop_assert!(t.is_infinite() || scores.iter().any(|&s| (s - t).abs() < 1e-12));
    }

    /// Identifier tokenisation inverts by concatenation.
    #[test]
    fn tokenizer_roundtrips(ident in "[a-z][a-z0-9]{0,6}(_[a-z][a-z0-9]{0,6}){0,3}") {
        let pieces = split_identifier(&ident);
        prop_assert_eq!(pieces.concat(), ident);
    }

    /// camelCase splitting also inverts.
    #[test]
    fn camel_tokenizer_roundtrips(
        head in "[a-z]{1,6}",
        tails in prop::collection::vec("[A-Z][a-z]{0,5}", 0..4),
    ) {
        let ident = format!("{head}{}", tails.concat());
        let pieces = split_identifier(&ident);
        prop_assert_eq!(pieces.concat(), ident);
    }

    /// Value SQL comparison is antisymmetric where defined.
    #[test]
    fn value_cmp_antisymmetric(a in -1000i64..1000, b in -1000i64..1000) {
        let va = Value::Int(a);
        let vb = Value::Float(b as f64 + 0.5);
        if let (Some(x), Some(y)) = (va.sql_cmp(&vb), vb.sql_cmp(&va)) {
            prop_assert_eq!(x, y.reverse());
        }
    }

    /// Group keys respect equality of numerically equal values.
    #[test]
    fn group_key_unifies_numeric_twins(x in -100000i64..100000) {
        prop_assert_eq!(Value::Int(x).group_key(), Value::Float(x as f64).group_key());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parser/printer fixpoint on generated gold SQL: every statement the
    /// workload generator can emit survives print → parse → print.
    #[test]
    fn workload_sql_roundtrips(seed in any::<u64>()) {
        let bench = rts::benchgen::BenchmarkProfile::spider_like()
            .scaled(0.01)
            .generate(seed % 1000);
        for inst in bench.split.dev.iter().take(10) {
            let text = inst.gold_sql.to_string();
            let reparsed = rts::nanosql::parser::parse(&text).expect("parse");
            prop_assert_eq!(&reparsed, &inst.gold_sql);
            prop_assert_eq!(reparsed.to_string(), text);
        }
    }
}

// ---------------------------------------------------------------------
// Batched-monitoring and parallel-pipeline parity.
//
// The batched mBPP path (`flag_trace`) and the instance-parallel
// pipeline must be *exactly* equivalent to their per-token / serial
// references — same flags, same RNG stream, same outcomes, same EX.
// Fixtures are trained once (probe training dominates) and shared.

mod parity {
    use super::*;
    use rts::benchgen::{Benchmark, BenchmarkProfile, Instance};
    use rts::core::abstention::{
        run_rts_linking, run_rts_linking_from, run_rts_linking_in, run_rts_linking_monolithic,
        LinkScratch, MitigationPolicy, Round0, RtsConfig,
    };
    use rts::core::bpp::{Mbpp, MbppConfig, ProbeConfig};
    use rts::core::branching::BranchDataset;
    use rts::core::context::{implicated_elements_reference, LinkContexts};
    use rts::core::human::{Expertise, HumanOracle};
    use rts::core::pipeline::{run_full_pipeline, run_joint_linking, JointOutcome};
    use rts::core::session::{
        resolve_flag, CtxHandle, LinkSession, SessionCheckpoint, SessionState,
    };
    use rts::core::sqlgen::SqlGenModel;
    use rts::core::traceback::{column_trie, table_trie, trace_back, trace_back_reference};
    use rts::serve::{
        drive_closed_loop, FaultPlan, ServeConfig, ServeEngine, ServeOutcome, ShardedEngine,
    };
    use rts::simlm::{
        CorpusVersion, GenMode, LayerSet, LinkTarget, SchemaLinker, SynthScratch, Vocab,
    };
    use std::sync::OnceLock;

    /// The CI matrix's corpus leg (`RTS_CORPUS=v1|v2`, default v2):
    /// the whole parity suite — lazy/eager, context/reference,
    /// session/monolith, serve/batch, chaos — runs under both
    /// synthesis corpora, with the fixture model and every `RtsConfig`
    /// agreeing on the version.
    fn env_corpus() -> CorpusVersion {
        match std::env::var("RTS_CORPUS").as_deref() {
            Ok("v1") => CorpusVersion::V1,
            _ => CorpusVersion::V2,
        }
    }

    struct Fx {
        bench: Benchmark,
        model: SchemaLinker,
        mbpp_t: Mbpp,
        mbpp_c: Mbpp,
        contexts: LinkContexts,
    }

    fn fixture() -> &'static Fx {
        static FX: OnceLock<Fx> = OnceLock::new();
        FX.get_or_init(|| {
            let bench = BenchmarkProfile::bird_like().scaled(0.04).generate(77);
            let model = SchemaLinker::new("bird", 5).with_corpus(env_corpus());
            let cfg = MbppConfig {
                probe: ProbeConfig {
                    epochs: 6,
                    ..Default::default()
                },
                ..Default::default()
            };
            let ds_t = BranchDataset::build(&model, &bench.split.train, LinkTarget::Tables, 300);
            let ds_c = BranchDataset::build(&model, &bench.split.train, LinkTarget::Columns, 300);
            let mbpp_t = Mbpp::train(&ds_t, &cfg);
            let mbpp_c = Mbpp::train(&ds_c, &cfg);
            let contexts = LinkContexts::build(&bench);
            Fx {
                bench,
                model,
                mbpp_t,
                mbpp_c,
                contexts,
            }
        })
    }

    /// Base config for parity runs. The CI parity matrix sets
    /// `RTS_REFERENCE` (`per-token`, `eager`, `reference`) so that
    /// parallel ≡ serial is enforced on the reference paths too, not
    /// just on the fast defaults — and crossed with `RTS_THREADS` so
    /// the serial and parallel runtimes are both exercised.
    fn base_config(seed: u64) -> RtsConfig {
        let mut config = RtsConfig {
            seed,
            corpus: env_corpus(),
            ..RtsConfig::default()
        };
        match std::env::var("RTS_REFERENCE").as_deref() {
            Ok("per-token") => config.per_token_monitoring = true,
            Ok("eager") => config.eager_synthesis = true,
            Ok("reference") => config.reference_linking = true,
            _ => {}
        }
        config
    }

    /// The corpus default threads consistently: an unconfigured
    /// `RtsConfig` expects the same corpus an unconfigured
    /// `SchemaLinker` generates (v2), so the `LinkSession::new`
    /// agreement debug-assert can never fire on defaults.
    #[test]
    fn default_corpus_is_v2_everywhere() {
        assert_eq!(RtsConfig::default().corpus, CorpusVersion::V2);
        assert_eq!(CorpusVersion::default(), CorpusVersion::V2);
        assert_eq!(SchemaLinker::new("bird", 5).corpus(), CorpusVersion::V2);
        assert_eq!(CorpusVersion::V1.tag(), "v1");
        assert_eq!(CorpusVersion::V2.tag(), "v2");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Lazy selected-layer synthesis ≡ eager full-stack synthesis,
        /// bit for bit, on every requested layer — across instances,
        /// positions, modes and arbitrary layer subsets (including the
        /// empty set). Non-hidden observables (tokens, softmax, branch
        /// labels, decisions) are identical too.
        #[test]
        fn lazy_synthesis_bit_identical_to_eager(
            pick in 0usize..1000,
            free in prop::bool::ANY,
            columns in prop::bool::ANY,
            mask in prop::collection::vec(prop::bool::ANY, 30),
        ) {
            let fx = fixture();
            let inst = &fx.bench.split.dev[pick % fx.bench.split.dev.len()];
            let mode = if free { GenMode::Free } else { GenMode::TeacherForced };
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let selected: Vec<usize> = mask
                .iter()
                .enumerate()
                .filter(|(_, &on)| on)
                .map(|(j, _)| j)
                .collect();
            let layers = LayerSet::select(selected.iter().copied());
            let mut v1 = Vocab::new();
            let eager = fx.model.generate(inst, &mut v1, target, mode);
            let mut v2 = Vocab::new();
            let mut scratch = SynthScratch::default();
            let lazy = fx.model.generate_with_layers(
                inst, &mut v2, target, mode, &layers, &mut scratch,
            );
            prop_assert_eq!(&lazy.tokens, &eager.tokens);
            prop_assert_eq!(&lazy.decisions, &eager.decisions);
            prop_assert_eq!(lazy.n_branches, eager.n_branches);
            for (ls, es) in lazy.steps.iter().zip(&eager.steps) {
                prop_assert_eq!(ls.softmax_prob.to_bits(), es.softmax_prob.to_bits());
                prop_assert_eq!(ls.is_branch, es.is_branch);
                prop_assert_eq!(ls.element_idx, es.element_idx);
                prop_assert_eq!(ls.hidden.len(), selected.len());
                for &j in &selected {
                    // f32 bit equality, layer by layer.
                    let l: Vec<u32> = ls.hidden.layer(j).iter().map(|x| x.to_bits()).collect();
                    let e: Vec<u32> = es.hidden.layer(j).iter().map(|x| x.to_bits()).collect();
                    prop_assert_eq!(l, e, "layer {} diverged", j);
                }
            }
        }

        /// The v2 corpus's chunk-at-a-time synthesis (whole
        /// `hidden_dim` rows via `fill_gaussian`) ≡ the straightforward
        /// per-dimension sequential reference drawing the same streams
        /// one scalar at a time — bit for bit, at every `LayerSet`
        /// selection, across instances, positions, modes and targets.
        /// This is the invariant that lets the chunked path be the
        /// production default without its own corpus version.
        #[test]
        fn v2_chunked_synthesis_matches_sequential_reference(
            pick in 0usize..1000,
            free in prop::bool::ANY,
            columns in prop::bool::ANY,
            mask in prop::collection::vec(prop::bool::ANY, 30),
        ) {
            let fx = fixture();
            let chunked = SchemaLinker::new("bird", 5);
            let sequential = SchemaLinker::new("bird", 5).with_v2_sequential_reference();
            let inst = &fx.bench.split.dev[pick % fx.bench.split.dev.len()];
            let mode = if free { GenMode::Free } else { GenMode::TeacherForced };
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let layers = LayerSet::select(
                mask.iter().enumerate().filter(|(_, &on)| on).map(|(j, _)| j),
            );
            let mut scratch = SynthScratch::default();
            let mut vc = Vocab::new();
            let c = chunked.generate_with_layers(inst, &mut vc, target, mode, &layers, &mut scratch);
            let mut vs = Vocab::new();
            let s =
                sequential.generate_with_layers(inst, &mut vs, target, mode, &layers, &mut scratch);
            prop_assert_eq!(&c.tokens, &s.tokens);
            prop_assert_eq!(&c.decisions, &s.decisions);
            for (cs, ss) in c.steps.iter().zip(&s.steps) {
                prop_assert_eq!(cs.softmax_prob.to_bits(), ss.softmax_prob.to_bits());
                for j in cs.hidden.layer_indices() {
                    let l: Vec<u32> = cs.hidden.layer(j).iter().map(|x| x.to_bits()).collect();
                    let r: Vec<u32> = ss.hidden.layer(j).iter().map(|x| x.to_bits()).collect();
                    prop_assert_eq!(l, r, "layer {} diverged", j);
                }
            }
        }

        /// Monitoring a lazily synthesized trace (only the mBPP's
        /// selected layers materialised) raises exactly the flags the
        /// eager full-stack trace does, with the merge RNG in
        /// lock-step — for both the batched and per-token paths.
        #[test]
        fn lazy_trace_flags_match_eager(
            seed in any::<u64>(),
            pick in 0usize..1000,
        ) {
            let fx = fixture();
            let inst = &fx.bench.split.dev[pick % fx.bench.split.dev.len()];
            let mut v1 = Vocab::new();
            let eager = fx.model.generate(inst, &mut v1, LinkTarget::Tables, GenMode::Free);
            let mut v2 = Vocab::new();
            let mut scratch = SynthScratch::default();
            let lazy = fx.model.generate_with_layers(
                inst, &mut v2, LinkTarget::Tables, GenMode::Free,
                &fx.mbpp_t.layer_set(), &mut scratch,
            );
            let mut rng_lazy = SplitMix64::new(seed);
            let mut rng_eager = SplitMix64::new(seed);
            prop_assert_eq!(
                fx.mbpp_t.flag_trace(&lazy, &mut rng_lazy),
                fx.mbpp_t.flag_trace(&eager, &mut rng_eager)
            );
            prop_assert!(rng_lazy == rng_eager, "merge rng diverged");
            // Per-token path (Mbpp::is_branch) over the lazy stacks.
            let mut rng_lazy = SplitMix64::new(seed);
            let mut rng_eager = SplitMix64::new(seed);
            prop_assert_eq!(
                fx.mbpp_t.flag_trace_per_token(&lazy, &mut rng_lazy),
                fx.mbpp_t.flag_trace_per_token(&eager, &mut rng_eager)
            );
        }

        /// The monitored-linking runtime produces byte-identical
        /// outcomes with lazy synthesis (the default) and with the
        /// eager full-stack reference (`eager_synthesis: true`) — the
        /// invariant that keeps every `results/*.json` experiment
        /// output byte-identical to the pre-lazy corpus.
        #[test]
        fn lazy_linking_outcomes_match_eager(seed in any::<u64>(), n in 8usize..24) {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE);
            let lazy_cfg = base_config(seed);
            let eager_cfg = RtsConfig { eager_synthesis: true, ..base_config(seed) };
            for policy in [
                MitigationPolicy::AbstainOnly,
                MitigationPolicy::Human(&oracle),
            ] {
                let run = |cfg: &RtsConfig| -> Vec<String> {
                    fx.bench.split.dev.iter().take(n).map(|inst| {
                        let meta = fx.bench.meta(&inst.db_name).unwrap();
                        let o = run_rts_linking(
                            &fx.model, &fx.mbpp_t, inst, meta,
                            LinkTarget::Tables, &policy, cfg,
                        );
                        format!("{o:?}")
                    }).collect()
                };
                prop_assert_eq!(run(&lazy_cfg), run(&eager_cfg));
            }
        }

        /// `flag_trace` (batched) ≡ `flag_trace_per_token`, flag for
        /// flag, with the permutation-merge RNG stream in lock-step.
        #[test]
        fn batched_flag_trace_matches_per_token(
            seed in any::<u64>(),
            pick in 0usize..1000,
            free in prop::bool::ANY,
        ) {
            let fx = fixture();
            let inst = &fx.bench.split.dev[pick % fx.bench.split.dev.len()];
            let mode = if free { GenMode::Free } else { GenMode::TeacherForced };
            let mut vocab = Vocab::new();
            let trace = fx.model.generate(inst, &mut vocab, LinkTarget::Tables, mode);
            let mut rng_batched = SplitMix64::new(seed);
            let mut rng_serial = SplitMix64::new(seed);
            let batched = fx.mbpp_t.flag_trace(&trace, &mut rng_batched);
            let per_token = fx.mbpp_t.flag_trace_per_token(&trace, &mut rng_serial);
            prop_assert_eq!(&batched, &per_token);
            // Identical RNG consumption ⇒ downstream decisions in a
            // multi-round run stay aligned too.
            prop_assert!(rng_batched == rng_serial, "rng streams diverged");
        }

        /// Parallel `run_full_pipeline` ≡ the serial per-instance loop:
        /// identical outcomes field-for-field and bit-identical EX.
        #[test]
        fn parallel_pipeline_matches_serial(seed in any::<u64>(), n in 10usize..30) {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE);
            let generator = SqlGenModel::deepseek_7b("bird", seed ^ 0x5EED);
            let config = base_config(seed);
            let instances: Vec<Instance> =
                fx.bench.split.dev.iter().take(n).cloned().collect();
            let (ex_par, outcomes_par) = run_full_pipeline(
                &fx.bench, &instances, &fx.model, &fx.mbpp_t, &fx.mbpp_c,
                &oracle, &generator, &config,
            );
            // Serial reference: the same per-instance computation, one
            // instance at a time on this thread.
            let policy = MitigationPolicy::Human(&oracle);
            let outcomes_serial: Vec<_> = instances
                .iter()
                .map(|inst| {
                    run_joint_linking(
                        &fx.model, &fx.mbpp_t, &fx.mbpp_c, inst, &fx.bench, &policy, &config,
                    )
                })
                .collect();
            let schemas: Vec<_> =
                outcomes_serial.iter().map(|o| o.provided_schema()).collect();
            let (ex_serial, _) = generator.execution_accuracy(
                instances.iter(),
                |db| fx.bench.database(db),
                |db| fx.bench.meta(db),
                |inst| {
                    let i = instances.iter().position(|x| x.id == inst.id).unwrap();
                    schemas[i].clone()
                },
            );
            prop_assert_eq!(outcomes_par.len(), outcomes_serial.len());
            for (p, s) in outcomes_par.iter().zip(&outcomes_serial) {
                prop_assert_eq!(&p.tables.predicted, &s.tables.predicted);
                prop_assert_eq!(&p.columns.predicted, &s.columns.predicted);
                prop_assert_eq!(p.tables.abstained, s.tables.abstained);
                prop_assert_eq!(p.columns.abstained, s.columns.abstained);
                prop_assert_eq!(p.tables.correct, s.tables.correct);
                prop_assert_eq!(p.columns.correct, s.columns.correct);
                prop_assert_eq!(p.tables.n_interventions, s.tables.n_interventions);
                prop_assert_eq!(p.columns.n_interventions, s.columns.n_interventions);
                prop_assert_eq!(p.tables.n_flags, s.tables.n_flags);
                prop_assert_eq!(p.columns.n_flags, s.columns.n_flags);
            }
            prop_assert!(ex_par == ex_serial, "EX diverged: {} vs {}", ex_par, ex_serial);
        }

        /// The shared-`LinkContext` runtime ≡ the pre-context reference
        /// path (`reference_linking: true`: explicit counterfactual
        /// generation, regeneration every round, clone-per-flag trie
        /// rebuild, full-prefix re-decode): outcomes field-for-field —
        /// flags, implicated-set-driven decisions, interventions,
        /// predictions — across targets, policies and seeds. This is
        /// the invariant that keeps every committed `results/*.json`
        /// byte-identical under the context refactor.
        #[test]
        fn context_linking_matches_reference(
            seed in any::<u64>(),
            n in 8usize..24,
            columns in prop::bool::ANY,
        ) {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE);
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let mbpp = if columns { &fx.mbpp_c } else { &fx.mbpp_t };
            let fast_cfg = base_config(seed);
            let ref_cfg = RtsConfig { reference_linking: true, ..base_config(seed) };
            let mut scratch = LinkScratch::default();
            for policy in [
                MitigationPolicy::AbstainOnly,
                MitigationPolicy::Human(&oracle),
            ] {
                for inst in fx.bench.split.dev.iter().take(n) {
                    let meta = fx.bench.meta(&inst.db_name).unwrap();
                    let ctx = fx.contexts.get(&inst.db_name, target);
                    let fast = run_rts_linking_in(
                        &fx.model, mbpp, inst, meta, ctx, &policy, &fast_cfg, &mut scratch,
                    );
                    let reference = run_rts_linking(
                        &fx.model, mbpp, inst, meta, target, &policy, &ref_cfg,
                    );
                    prop_assert_eq!(
                        format!("{:?}", fast),
                        format!("{:?}", reference),
                        "instance {} target {:?}", inst.id, target
                    );
                }
            }
        }

        /// `run_rts_linking_from` (round 0 supplied by the caller — the
        /// production dataflow where the generated stream is shared
        /// with the monitor) ≡ regenerating round 0 inside the runtime.
        #[test]
        fn from_trace_linking_matches_regenerating(
            seed in any::<u64>(),
            n in 8usize..24,
            columns in prop::bool::ANY,
        ) {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE);
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let mbpp = if columns { &fx.mbpp_c } else { &fx.mbpp_t };
            let config = base_config(seed);
            let mut scratch = LinkScratch::default();
            for policy in [
                MitigationPolicy::AbstainOnly,
                MitigationPolicy::Human(&oracle),
            ] {
                for inst in fx.bench.split.dev.iter().take(n) {
                    let meta = fx.bench.meta(&inst.db_name).unwrap();
                    let ctx = fx.contexts.get(&inst.db_name, target);
                    let mut vocab = Vocab::new();
                    let trace = fx.model.generate_with_layers(
                        inst, &mut vocab, target, GenMode::Free,
                        &mbpp.layer_set(), &mut scratch.synth,
                    );
                    let from = run_rts_linking_from(
                        &fx.model, mbpp, inst, meta, ctx,
                        Round0 { trace: &trace, vocab: &vocab },
                        &policy, &config, &mut scratch,
                    );
                    let regen = run_rts_linking_in(
                        &fx.model, mbpp, inst, meta, ctx, &policy, &config, &mut scratch,
                    );
                    prop_assert_eq!(
                        format!("{:?}", from),
                        format!("{:?}", regen),
                        "instance {} target {:?}", inst.id, target
                    );
                }
            }
        }

        /// The resumable `LinkSession` drivers ≡ the pre-session
        /// monolithic blocking loop, field for field, across policies,
        /// targets, seeds and both driver shapes (`run_rts_linking_in`
        /// and the trace-consuming `run_rts_linking_from`). Multi-round
        /// Human runs only agree if the merge-RNG stream, flag counts
        /// and intervention accounting stay in lock-step, so outcome
        /// equality pins the whole state machine — under every
        /// `RTS_REFERENCE` knob and thread count of the CI matrix.
        #[test]
        fn session_linking_matches_monolithic_loop(
            seed in any::<u64>(),
            n in 8usize..20,
            columns in prop::bool::ANY,
        ) {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE);
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let mbpp = if columns { &fx.mbpp_c } else { &fx.mbpp_t };
            let config = base_config(seed);
            let mut scratch = LinkScratch::default();
            for policy in [
                MitigationPolicy::AbstainOnly,
                MitigationPolicy::Human(&oracle),
            ] {
                for inst in fx.bench.split.dev.iter().take(n) {
                    let meta = fx.bench.meta(&inst.db_name).unwrap();
                    let ctx = fx.contexts.get(&inst.db_name, target);
                    // Driver shape 1: shared context, internal round 0.
                    let driven = run_rts_linking_in(
                        &fx.model, mbpp, inst, meta, ctx, &policy, &config, &mut scratch,
                    );
                    let monolithic = run_rts_linking_monolithic(
                        &fx.model, mbpp, inst, meta, target, Some(ctx), None,
                        &policy, &config, &mut scratch,
                    );
                    prop_assert_eq!(
                        format!("{:?}", driven),
                        format!("{:?}", monolithic),
                        "run_rts_linking_in vs monolith, instance {} target {:?}",
                        inst.id, target
                    );
                    // Driver shape 2: caller-supplied round-0 stream.
                    let mut vocab = Vocab::new();
                    let trace = fx.model.generate_with_layers(
                        inst, &mut vocab, target, GenMode::Free,
                        &mbpp.layer_set(), &mut scratch.synth,
                    );
                    let round0 = Round0 { trace: &trace, vocab: &vocab };
                    let driven = run_rts_linking_from(
                        &fx.model, mbpp, inst, meta, ctx, round0, &policy, &config, &mut scratch,
                    );
                    let monolithic = run_rts_linking_monolithic(
                        &fx.model, mbpp, inst, meta, target, Some(ctx), Some(round0),
                        &policy, &config, &mut scratch,
                    );
                    prop_assert_eq!(
                        format!("{:?}", driven),
                        format!("{:?}", monolithic),
                        "run_rts_linking_from vs monolith, instance {} target {:?}",
                        inst.id, target
                    );
                }
            }
        }

        /// Checkpointed-and-restored sessions ≡ the monolithic blocking
        /// loop: at every suspension the session is serialized through
        /// the serde shim, dropped (hidden stacks and all), restored
        /// from bytes (the evicted round re-synthesized from the
        /// override recipe), and only then resolved. Flags, the merge
        /// RNG stream, interventions and outcomes must be identical to
        /// a run that never parked — under every `RTS_REFERENCE` knob
        /// and thread count of the CI matrix, so `results/*.json`
        /// cannot drift however often the serving engine checkpoints.
        #[test]
        fn checkpoint_roundtrip_matches_monolithic_loop(
            seed in any::<u64>(),
            n in 6usize..16,
            columns in prop::bool::ANY,
        ) {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, seed ^ 0x0DDE);
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let mbpp = if columns { &fx.mbpp_c } else { &fx.mbpp_t };
            let config = base_config(seed);
            let mut scratch = LinkScratch::default();
            for policy in [
                MitigationPolicy::AbstainOnly,
                MitigationPolicy::Human(&oracle),
            ] {
                for inst in fx.bench.split.dev.iter().take(n) {
                    let meta = fx.bench.meta(&inst.db_name).unwrap();
                    let ctx = fx.contexts.get(&inst.db_name, target);
                    let mut session = LinkSession::new(
                        &fx.model, mbpp, inst, meta, target,
                        Some(CtxHandle::Borrowed(ctx)), None, &config,
                    );
                    let outcome = loop {
                        match session.step(&mut scratch) {
                            SessionState::Done(o) => break o,
                            SessionState::NeedsFeedback(q) => {
                                let held = session.held_bytes();
                                let bytes = rts::serve::checkpoint::encode(&session.checkpoint());
                                let back: SessionCheckpoint =
                                    rts::serve::checkpoint::decode(&bytes);
                                // Reassignment drops the live session.
                                session = LinkSession::restore(
                                    &fx.model, mbpp, inst, meta, target,
                                    Some(CtxHandle::Borrowed(ctx)), &config,
                                    &back, &mut scratch.synth,
                                );
                                prop_assert_eq!(session.pending_query(), Some(&q));
                                prop_assert_eq!(session.held_bytes(), held,
                                    "restored round must be byte-for-byte the evicted one");
                                session.resolve(resolve_flag(&policy, inst, &q));
                            }
                        }
                    };
                    let monolithic = run_rts_linking_monolithic(
                        &fx.model, mbpp, inst, meta, target, Some(ctx), None,
                        &policy, &config, &mut scratch,
                    );
                    prop_assert_eq!(
                        format!("{:?}", outcome),
                        format!("{:?}", monolithic),
                        "checkpointed drive vs monolith, instance {} target {:?}",
                        inst.id, target
                    );
                }
            }
        }

        /// The incremental trace back ≡ the quadratic re-decode
        /// reference on arbitrary (branch position, truncation) pairs of
        /// generated streams — including mid-element truncations that
        /// exercise the trie-completion path.
        #[test]
        fn traceback_incremental_matches_reference(
            pick in 0usize..1000,
            branch_sel in 0usize..1000,
            cut_sel in 0usize..1000,
            columns in prop::bool::ANY,
        ) {
            let fx = fixture();
            let inst = &fx.bench.split.dev[pick % fx.bench.split.dev.len()];
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let mut vocab = Vocab::new();
            let trace = fx.model.generate(inst, &mut vocab, target, GenMode::Free);
            let meta = fx.bench.meta(&inst.db_name).unwrap();
            let trie = match target {
                LinkTarget::Tables => table_trie(&mut vocab, meta),
                LinkTarget::Columns => column_trie(&mut vocab, meta),
            };
            let branch_pos = branch_sel % trace.tokens.len();
            let cut = branch_pos + 1 + cut_sel % (trace.tokens.len() - branch_pos);
            let toks = &trace.tokens[..cut];
            prop_assert_eq!(
                trace_back(&vocab, &trie, toks, branch_pos),
                trace_back_reference(&vocab, &trie, toks, branch_pos),
                "instance {} target {:?} branch {} cut {}", inst.id, target, branch_pos, cut
            );
        }

        /// The cached-context implicated set ≡ the clone-per-flag
        /// rebuild, at every position of complete generated streams
        /// (what the runtime actually traces back from).
        #[test]
        fn context_implicated_sets_match_rebuild(
            pick in 0usize..1000,
            branch_sel in 0usize..1000,
            columns in prop::bool::ANY,
        ) {
            let fx = fixture();
            let inst = &fx.bench.split.dev[pick % fx.bench.split.dev.len()];
            let target = if columns { LinkTarget::Columns } else { LinkTarget::Tables };
            let mut vocab = Vocab::new();
            let trace = fx.model.generate(inst, &mut vocab, target, GenMode::Free);
            let meta = fx.bench.meta(&inst.db_name).unwrap();
            let ctx = fx.contexts.get(&inst.db_name, target);
            let branch_pos = branch_sel % trace.tokens.len();
            prop_assert_eq!(
                ctx.implicated_elements(&vocab, &trace.tokens, branch_pos),
                implicated_elements_reference(&vocab, meta, target, &trace.tokens, branch_pos),
                "instance {} target {:?} branch {}", inst.id, target, branch_pos
            );
        }
    }

    /// The `rts-serve` engine ≡ batch `run_full_pipeline` on the same
    /// instance set: concurrent clients, parked sessions and the lazy
    /// context cache must change *when* answers arrive, never what
    /// they are. Runs under the CI parity matrix, so worker scheduling
    /// (`RTS_THREADS`) and every `RTS_REFERENCE` knob are crossed with
    /// the engine's concurrency.
    #[test]
    fn serve_engine_matches_batch_pipeline() {
        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 0x5E17E);
        let config = base_config(0xC0FFEE);
        let instances: Vec<Instance> = fx.bench.split.dev.iter().take(36).cloned().collect();
        let serve_cfg = ServeConfig {
            queue_capacity: 6,
            cache_capacity: 3,
            rts: config.clone(),
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            serve_cfg,
        );
        let n_clients = 3;
        let served: Vec<(u64, JointOutcome)> = crossbeam::thread::scope(|s| {
            for _ in 0..engine.config().workers {
                s.spawn(|_| engine.worker_loop());
            }
            let handles: Vec<_> = (0..n_clients)
                .map(|c| {
                    let engine = &engine;
                    let instances = &instances;
                    let oracle = &oracle;
                    s.spawn(move |_| {
                        let policy = MitigationPolicy::Human(oracle);
                        let slice: Vec<Instance> = instances
                            .iter()
                            .skip(c)
                            .step_by(n_clients)
                            .cloned()
                            .collect();
                        // One tenant per client: the fair queue and
                        // per-tenant accounting run on the parity path.
                        drive_closed_loop(engine, c as u32, &slice, |inst, query| {
                            Some(resolve_flag(&policy, inst, query))
                        })
                    })
                })
                .collect();
            let out: Vec<_> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("client panicked"))
                .map(|(id, done)| {
                    assert!(!done.shed, "no deadline configured");
                    assert!(!done.faulted, "no fault plan armed");
                    (id, done.outcome)
                })
                .collect();
            engine.shutdown();
            out
        })
        .expect("serve scope panicked");

        let generator = SqlGenModel::deepseek_7b("bird", 99);
        let (_ex, batch) = run_full_pipeline(
            &fx.bench, &instances, &fx.model, &fx.mbpp_t, &fx.mbpp_c, &oracle, &generator, &config,
        );
        assert_eq!(served.len(), instances.len());
        for (id, outcome) in &served {
            let i = instances.iter().position(|x| x.id == *id).unwrap();
            assert_eq!(
                format!("{outcome:?}"),
                format!("{:?}", batch[i]),
                "serve/batch outcome mismatch on instance {id}"
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.completed, instances.len() as u64);
        assert!(
            stats.feedback_rounds > 0,
            "a human workload must suspend at least once"
        );
        assert!(
            stats.parked_sessions_peak >= 1,
            "suspensions must park sessions"
        );
        if !config.reference_linking {
            // The reference knob runs context-free, bypassing the cache.
            assert!(stats.cache.hits > 0, "contexts must be reused");
        }
    }

    /// The wire stack ≡ the in-process engine, byte for byte: the same
    /// closed-loop workload as `serve_engine_matches_batch_pipeline`,
    /// but driven through `rts-served` over loopback TCP by the
    /// `rts-client` crate — framing, request ids, feedback resolution,
    /// and stats all cross the socket, and every outcome must still be
    /// identical to the batch pipeline. Runs under the CI parity
    /// matrix (`RTS_THREADS × RTS_REFERENCE × RTS_CORPUS`) like the
    /// in-process case it mirrors.
    #[test]
    fn wire_serve_matches_batch_pipeline() {
        use rts::client::RtsClient;
        use rts::served::Server;
        use std::sync::Arc;

        let fx = fixture();
        let oracle = HumanOracle::new(Expertise::Expert, 0x5E17E);
        let config = base_config(0xC0FFEE);
        let instances: Vec<Instance> = fx.bench.split.dev.iter().take(36).cloned().collect();
        let serve_cfg = ServeConfig {
            queue_capacity: 6,
            cache_capacity: 3,
            rts: config.clone(),
            ..ServeConfig::default()
        };
        let engine = Arc::new(ServeEngine::new(
            &fx.model,
            &fx.mbpp_t,
            &fx.mbpp_c,
            &fx.bench.metas,
            serve_cfg,
        ));
        let fingerprint = "parity-fixture|wire=v1".to_string();
        let server = Server::new(
            Arc::clone(&engine),
            fingerprint.clone(),
            instances.iter().cloned(),
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("loopback addr").to_string();
        let n_clients = 3;
        let served: Vec<(u64, JointOutcome)> = crossbeam::thread::scope(|s| {
            for _ in 0..engine.config().workers {
                let engine = &engine;
                s.spawn(move |_| engine.worker_loop());
            }
            let srv = server.clone();
            let accept = s.spawn(move |_| srv.serve(listener));
            let client = RtsClient::connect(&addr, Some(&fingerprint)).expect("wire handshake");
            let handles: Vec<_> = (0..n_clients)
                .map(|c| {
                    let client = client.clone();
                    let instances = &instances;
                    let oracle = &oracle;
                    s.spawn(move |_| {
                        let policy = MitigationPolicy::Human(oracle);
                        let slice: Vec<Instance> = instances
                            .iter()
                            .skip(c)
                            .step_by(n_clients)
                            .cloned()
                            .collect();
                        drive_closed_loop(&client, c as u32, &slice, |inst, query| {
                            Some(resolve_flag(&policy, inst, query))
                        })
                    })
                })
                .collect();
            let out: Vec<_> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("wire client panicked"))
                .map(|(id, done)| {
                    assert!(!done.shed, "no deadline configured");
                    assert!(!done.faulted, "no fault plan armed");
                    (id, done.outcome)
                })
                .collect();
            // Gauges drain to zero, read over the wire — Stats
            // round-trips and the server holds no session memory.
            let stats = rts::serve::Engine::stats(&client);
            assert_eq!(stats.completed, instances.len() as u64);
            assert_eq!(stats.parked_sessions_now, 0, "server leaks sessions");
            assert_eq!(stats.parked_bytes_now, 0, "server leaks parked bytes");
            assert_eq!(stats.checkpoint_bytes_now, 0, "server leaks checkpoints");
            rts::serve::Engine::shutdown(&client);
            client.bye();
            accept
                .join()
                .expect("accept thread panicked")
                .expect("serve drains cleanly");
            out
        })
        .expect("wire scope panicked");

        let generator = SqlGenModel::deepseek_7b("bird", 99);
        let (_ex, batch) = run_full_pipeline(
            &fx.bench, &instances, &fx.model, &fx.mbpp_t, &fx.mbpp_c, &oracle, &generator, &config,
        );
        assert_eq!(served.len(), instances.len(), "zero drops over the wire");
        for (id, outcome) in &served {
            let i = instances.iter().position(|x| x.id == *id).unwrap();
            assert_eq!(
                format!("{outcome:?}"),
                format!("{:?}", batch[i]),
                "wire/batch outcome mismatch on instance {id}"
            );
        }
    }

    /// The workload shape shared by the shard-parity proptest cases
    /// and their batch-pipeline baseline.
    const SHARD_N: usize = 30;
    const SHARD_RTS_SEED: u64 = 0xC0FFEE;
    const SHARD_ORACLE_SEED: u64 = 0x5E17E;

    /// Batch-pipeline outcomes for the shard-parity workload, one
    /// `Debug` string per instance — computed once per process.
    fn shard_baseline() -> &'static [String] {
        static BASELINE: OnceLock<Vec<String>> = OnceLock::new();
        BASELINE.get_or_init(|| {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, SHARD_ORACLE_SEED);
            let generator = SqlGenModel::deepseek_7b("bird", 99);
            let config = base_config(SHARD_RTS_SEED);
            let instances: Vec<Instance> =
                fx.bench.split.dev.iter().take(SHARD_N).cloned().collect();
            let (_ex, batch) = run_full_pipeline(
                &fx.bench, &instances, &fx.model, &fx.mbpp_t, &fx.mbpp_c, &oracle, &generator,
                &config,
            );
            batch.iter().map(|o| format!("{o:?}")).collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The sharded engine ≡ the single-shard engine, byte for byte
        /// per request, across shard counts and worker budgets:
        /// database partitioning, per-shard caches, and work-stealing
        /// placement may move *when* answers arrive, never what they
        /// are. Parity is pinned transitively against the batch
        /// pipeline (the same baseline `serve_engine_matches_batch_…`
        /// holds the one-shard engine to), and rides the CI
        /// `RTS_THREADS × RTS_REFERENCE` matrix like every other
        /// parity case. Zero drops and per-shard gauge drain are
        /// asserted on every case.
        #[test]
        fn sharded_engine_matches_single_shard(
            shards in 2usize..5,
            workers in 1usize..5,
        ) {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, SHARD_ORACLE_SEED);
            let baseline = shard_baseline();
            let instances: Vec<Instance> =
                fx.bench.split.dev.iter().take(SHARD_N).cloned().collect();
            let serve_cfg = ServeConfig {
                workers,
                queue_capacity: 6,
                cache_capacity: 3,
                rts: base_config(SHARD_RTS_SEED),
                ..ServeConfig::default()
            };
            let engine = ShardedEngine::new(
                &fx.model,
                &fx.mbpp_t,
                &fx.mbpp_c,
                &fx.bench.metas,
                shards,
                serve_cfg,
            );
            let n_clients = 3;
            let served: Vec<(u64, JointOutcome)> = crossbeam::thread::scope(|s| {
                let eng = &engine;
                for i in 0..eng.workers_total() {
                    s.spawn(move |_| eng.worker_loop(i));
                }
                let handles: Vec<_> = (0..n_clients)
                    .map(|c| {
                        let instances = &instances;
                        let oracle = &oracle;
                        s.spawn(move |_| {
                            let policy = MitigationPolicy::Human(oracle);
                            let slice: Vec<Instance> = instances
                                .iter()
                                .skip(c)
                                .step_by(n_clients)
                                .cloned()
                                .collect();
                            drive_closed_loop(eng, c as u32, &slice, |inst, query| {
                                Some(resolve_flag(&policy, inst, query))
                            })
                        })
                    })
                    .collect();
                let out: Vec<_> = handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sharded client panicked"))
                    .map(|(id, done)| {
                        assert!(!done.shed, "no deadline configured");
                        assert!(!done.faulted, "no fault plan armed");
                        (id, done.outcome)
                    })
                    .collect();
                engine.shutdown();
                out
            })
            .expect("sharded scope panicked");

            // Byte-identical outcomes, zero drops.
            prop_assert_eq!(served.len(), instances.len());
            for (id, outcome) in &served {
                let i = instances.iter().position(|x| x.id == *id).unwrap();
                prop_assert_eq!(
                    format!("{outcome:?}"),
                    baseline[i].clone(),
                    "sharded/batch outcome mismatch on instance {} ({} shards, {} workers)",
                    id, shards, workers
                );
            }
            // Placement followed the pinned routing hash exactly, and
            // every per-shard gauge drained.
            let mut expected = vec![0u64; engine.n_shards()];
            for inst in &instances {
                expected[rts::core::context::db_shard(&inst.db_name, shards)] += 1;
            }
            let mut shard_completed = 0u64;
            for (idx, want) in expected.iter().enumerate() {
                let s = engine.shard_stats(idx).unwrap();
                shard_completed += s.completed;
                prop_assert_eq!(
                    s.completed, *want,
                    "shard {} served {} requests, routing promised {}",
                    idx, s.completed, want
                );
                prop_assert_eq!(s.parked_bytes_now, 0, "shard {} leaks parked bytes", idx);
                prop_assert_eq!(s.parked_sessions_now, 0, "shard {} leaks sessions", idx);
                prop_assert_eq!(s.checkpoint_bytes_now, 0, "shard {} leaks checkpoints", idx);
            }
            prop_assert_eq!(shard_completed, instances.len() as u64);
        }
    }

    /// The chaos workload shape shared by the fault-schedule proptest
    /// and its fault-free baseline.
    const CHAOS_N: usize = 24;
    const CHAOS_RTS_SEED: u64 = 0xC4405;
    const CHAOS_ORACLE_SEED: u64 = 0x0DDE;

    /// Fault-free batch outcomes for the chaos workload, one `Debug`
    /// string per instance — computed once per process (the batch
    /// pipeline would otherwise dominate every proptest case).
    fn chaos_baseline() -> &'static [String] {
        static BASELINE: OnceLock<Vec<String>> = OnceLock::new();
        BASELINE.get_or_init(|| {
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, CHAOS_ORACLE_SEED);
            let generator = SqlGenModel::deepseek_7b("bird", 99);
            let config = base_config(CHAOS_RTS_SEED);
            let instances: Vec<Instance> =
                fx.bench.split.dev.iter().take(CHAOS_N).cloned().collect();
            let (_ex, batch) = run_full_pipeline(
                &fx.bench, &instances, &fx.model, &fx.mbpp_t, &fx.mbpp_c, &oracle, &generator,
                &config,
            );
            batch.iter().map(|o| format!("{o:?}")).collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Degrade-only under chaos: for *arbitrary* seeded fault
        /// schedules — step panics, corrupt checkpoints, context-build
        /// failures, lost and delayed feedback, all armed at once —
        /// every ticket still terminates exactly once, nothing is
        /// dropped, the parked/checkpoint gauges drain to zero, every
        /// fault-degraded outcome is an abstention (never a wrong
        /// answer), and requests the faults did *not* degrade are
        /// byte-identical to the fault-free batch pipeline. Runs under
        /// the CI parity matrix, so the recovery machinery is crossed
        /// with `RTS_THREADS` and every `RTS_REFERENCE` knob.
        #[test]
        fn chaos_fault_schedules_degrade_only(fault_seed in any::<u64>()) {
            rts::serve::fault::silence_injected_panics();
            let fx = fixture();
            let oracle = HumanOracle::new(Expertise::Expert, CHAOS_ORACLE_SEED);
            let baseline = chaos_baseline();
            let instances: Vec<Instance> =
                fx.bench.split.dev.iter().take(CHAOS_N).cloned().collect();
            let serve_cfg = ServeConfig {
                workers: 2,
                queue_capacity: 4,
                cache_capacity: 2,
                // Budget 1 forces every park through the checkpoint
                // path, so CheckpointDecode faults fire on restores.
                parked_bytes_budget: 1,
                // Required for FeedbackLoss to inject; generous enough
                // that answered flags rarely lose the race.
                feedback_timeout: Some(std::time::Duration::from_millis(50)),
                fault: FaultPlan::seeded(fault_seed, 0.08),
                step_retry_budget: 64,
                step_retry_backoff: std::time::Duration::ZERO,
                rts: base_config(CHAOS_RTS_SEED),
                ..ServeConfig::default()
            };
            let engine = ServeEngine::new(
                &fx.model,
                &fx.mbpp_t,
                &fx.mbpp_c,
                &fx.bench.metas,
                serve_cfg,
            );
            let n_clients = 3;
            let served: Vec<(u64, ServeOutcome)> = crossbeam::thread::scope(|s| {
                for _ in 0..engine.config().workers {
                    s.spawn(|_| engine.worker_loop());
                }
                let handles: Vec<_> = (0..n_clients)
                    .map(|c| {
                        let engine = &engine;
                        let instances = &instances;
                        let oracle = &oracle;
                        s.spawn(move |_| {
                            let policy = MitigationPolicy::Human(oracle);
                            let slice: Vec<Instance> = instances
                                .iter()
                                .skip(c)
                                .step_by(n_clients)
                                .cloned()
                                .collect();
                            // `Stale` resolves are a legal race under
                            // the feedback timeout and the injected
                            // loss/delay faults; the shared driver
                            // absorbs them.
                            drive_closed_loop(engine, c as u32, &slice, |inst, query| {
                                Some(resolve_flag(&policy, inst, query))
                            })
                        })
                    })
                    .collect();
                let out: Vec<_> = handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("chaos client panicked"))
                    .collect();
                engine.shutdown();
                out
            })
            .expect("chaos scope panicked");

            // Exactly-once termination: nothing dropped, nothing doubled.
            prop_assert_eq!(served.len(), instances.len());
            let stats = engine.stats();
            prop_assert_eq!(stats.completed, instances.len() as u64);
            // The gauges must drain: recovery never leaks parked state.
            prop_assert_eq!(stats.parked_bytes_now, 0);
            prop_assert_eq!(stats.parked_sessions_now, 0);
            prop_assert_eq!(stats.checkpoint_bytes_now, 0);
            let mut checked = 0usize;
            for (id, done) in &served {
                let i = instances.iter().position(|x| x.id == *id).unwrap();
                if done.faulted {
                    // Degrade-only: an unrecoverable fault abstains,
                    // it never fabricates an answer.
                    prop_assert!(
                        done.outcome.tables.abstained || done.outcome.columns.abstained,
                        "faulted instance {} did not abstain", id
                    );
                } else if !done.timed_out && !done.shed && !done.drained {
                    // Recovered faults must be invisible: outcomes the
                    // schedule did not degrade are byte-identical to
                    // the fault-free batch pipeline.
                    prop_assert_eq!(
                        format!("{:?}", done.outcome),
                        baseline[i].clone(),
                        "chaos/batch outcome mismatch on instance {}", id
                    );
                    checked += 1;
                }
            }
            prop_assert!(checked > 0, "every request degraded — no parity coverage");
        }
    }

    /// Full-stack consumers are untouched by lazy synthesis:
    /// `BranchDataset::build` still collects every layer of every
    /// token, row for row what eager per-instance traces contain.
    #[test]
    fn branch_dataset_still_builds_from_full_stacks() {
        let fx = fixture();
        let ds = BranchDataset::build(&fx.model, &fx.bench.split.train, LinkTarget::Tables, 12);
        assert_eq!(ds.n_layers, fx.model.n_layers);
        assert_eq!(ds.layers.len(), fx.model.n_layers);
        let mut row = 0usize;
        for inst in &fx.bench.split.train[..12] {
            let mut vocab = Vocab::new();
            let trace =
                fx.model
                    .generate(inst, &mut vocab, LinkTarget::Tables, GenMode::TeacherForced);
            for step in &trace.steps {
                assert_eq!(step.hidden.len(), fx.model.n_layers, "full stack expected");
                for j in 0..fx.model.n_layers {
                    assert_eq!(
                        ds.layers[j].row(row),
                        step.hidden.layer(j),
                        "dataset row {row} layer {j} diverged from the eager trace"
                    );
                }
                assert_eq!(ds.labels[row] > 0.5, step.is_branch);
                row += 1;
            }
        }
        assert_eq!(row, ds.n_tokens());
    }
}

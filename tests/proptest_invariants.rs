//! Property-based tests over the core invariants of the stack:
//! conformal set algebra and merge theorems, SQL parser round-trips,
//! result-comparison symmetry, and tokenizer inversion.

use proptest::prelude::*;
use rts::conformal::{majority_vote, random_permutation_merge, LabelSet, SplitConformal};
use rts::conformal::merge::majority_vote_inclusive;
use rts::nanosql::value::Value;
use rts::simlm::vocab::split_identifier;
use rts::tinynn::rng::SplitMix64;

fn label_set_strategy(n_labels: usize) -> impl Strategy<Value = LabelSet> {
    prop::collection::vec(prop::bool::ANY, n_labels).prop_map(|bits| {
        bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect()
    })
}

proptest! {
    /// Theorem 2: |C_θ| ≤ (1/(nθ)) Σ|C_i| for arbitrary set families.
    #[test]
    fn theorem2_size_bound(
        sets in prop::collection::vec(label_set_strategy(6), 1..12),
        theta in 0.05f64..0.95,
    ) {
        let merged = majority_vote(&sets, theta, 6);
        let sum: usize = sets.iter().map(|s| s.len()).sum();
        prop_assert!(merged.len() as f64 <= sum as f64 / (sets.len() as f64 * theta) + 1e-9);
    }

    /// Theorem 3 (size part): C_π ⊆ inclusive majority vote at θ = ½.
    #[test]
    fn permutation_merge_never_exceeds_majority(
        sets in prop::collection::vec(label_set_strategy(4), 1..10),
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let merged = random_permutation_merge(&sets, 4, &mut rng);
        let vote = majority_vote_inclusive(&sets, 4);
        prop_assert!(merged.is_subset_of(vote), "{merged} ⊄ {vote}");
    }

    /// Monotonicity: a lower error level can only widen prediction sets.
    #[test]
    fn conformal_sets_grow_as_alpha_shrinks(
        scores in prop::collection::vec(0.0f64..1.0, 30..200),
        p1 in 0.0f64..1.0,
    ) {
        let tight = SplitConformal::from_scores(scores.clone(), 0.2);
        let loose = SplitConformal::from_scores(scores, 0.05);
        let set_tight = tight.predict_binary(p1);
        let set_loose = loose.predict_binary(p1);
        prop_assert!(set_tight.is_subset_of(set_loose));
    }

    /// The split-conformal threshold is one of the calibration scores
    /// (or +∞), never an interpolation artefact.
    #[test]
    fn conformal_threshold_is_order_statistic(
        scores in prop::collection::vec(0.0f64..1.0, 20..100),
        alpha in 0.05f64..0.4,
    ) {
        let cp = SplitConformal::from_scores(scores.clone(), alpha);
        let t = cp.threshold();
        prop_assert!(t.is_infinite() || scores.iter().any(|&s| (s - t).abs() < 1e-12));
    }

    /// Identifier tokenisation inverts by concatenation.
    #[test]
    fn tokenizer_roundtrips(ident in "[a-z][a-z0-9]{0,6}(_[a-z][a-z0-9]{0,6}){0,3}") {
        let pieces = split_identifier(&ident);
        prop_assert_eq!(pieces.concat(), ident);
    }

    /// camelCase splitting also inverts.
    #[test]
    fn camel_tokenizer_roundtrips(
        head in "[a-z]{1,6}",
        tails in prop::collection::vec("[A-Z][a-z]{0,5}", 0..4),
    ) {
        let ident = format!("{head}{}", tails.concat());
        let pieces = split_identifier(&ident);
        prop_assert_eq!(pieces.concat(), ident);
    }

    /// Value SQL comparison is antisymmetric where defined.
    #[test]
    fn value_cmp_antisymmetric(a in -1000i64..1000, b in -1000i64..1000) {
        let va = Value::Int(a);
        let vb = Value::Float(b as f64 + 0.5);
        if let (Some(x), Some(y)) = (va.sql_cmp(&vb), vb.sql_cmp(&va)) {
            prop_assert_eq!(x, y.reverse());
        }
    }

    /// Group keys respect equality of numerically equal values.
    #[test]
    fn group_key_unifies_numeric_twins(x in -100000i64..100000) {
        prop_assert_eq!(Value::Int(x).group_key(), Value::Float(x as f64).group_key());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parser/printer fixpoint on generated gold SQL: every statement the
    /// workload generator can emit survives print → parse → print.
    #[test]
    fn workload_sql_roundtrips(seed in any::<u64>()) {
        let bench = rts::benchgen::BenchmarkProfile::spider_like()
            .scaled(0.01)
            .generate(seed % 1000);
        for inst in bench.split.dev.iter().take(10) {
            let text = inst.gold_sql.to_string();
            let reparsed = rts::nanosql::parser::parse(&text).expect("parse");
            prop_assert_eq!(&reparsed, &inst.gold_sql);
            prop_assert_eq!(reparsed.to_string(), text);
        }
    }
}
